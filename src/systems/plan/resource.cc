#include "systems/plan/resource.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace rdfspark::systems::plan {

namespace {

/// Saturating arithmetic over byte/row quantities. The top value doubles as
/// "unbounded": a bound that overflows uint64 (>= 18 exabytes) is as good as
/// no bound, and saturation keeps every fold monotone.
uint64_t SatAdd(uint64_t a, uint64_t b) {
  if (a == kUnboundedBytes || b == kUnboundedBytes) return kUnboundedBytes;
  return a > kUnboundedBytes - b ? kUnboundedBytes : a + b;
}

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kUnboundedBytes || b == kUnboundedBytes) return kUnboundedBytes;
  return a > kUnboundedBytes / b ? kUnboundedBytes : a * b;
}

/// IdTable byte model for `rows` rows of `width` columns (see
/// sparql::IdTable::EstimatedByteSize): 8-byte cells, 16-byte batch header.
uint64_t TableBytes(uint64_t rows, uint64_t width) {
  if (rows == kUnboundedBytes) return kUnboundedBytes;
  return SatAdd(kEnvelopeBatchHeaderBytes,
                SatMul(rows, SatMul(width, kEnvelopeBytesPerCell)));
}

bool IsJoin(NodeKind k) {
  return k == NodeKind::kPartitionedHashJoin || k == NodeKind::kBroadcastJoin;
}

/// Operators that must hold an input (or their whole output) resident
/// before emitting anything — the shapes an unbounded input actually hurts.
bool IsBlocking(const PlanNode& node) {
  return IsJoin(node.kind) || node.kind == NodeKind::kCartesianProduct;
}

bool IsShuffleBarrier(const PlanNode& node) {
  return node.kind == NodeKind::kPartitionedHashJoin && !node.partition_local;
}

std::string FormatBytesValue(uint64_t bytes) {
  if (bytes == kUnboundedBytes) return "unbounded";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 "B", bytes);
  return buf;
}

/// The bottom-up envelope fold, mirroring the plan verifier's visitor shape
/// (verifier.cc) so findings carry identical path syntax.
class ResourceAnalyzer {
 public:
  explicit ResourceAnalyzer(const ResourceProfile& profile)
      : profile_(profile) {}

  struct SubtreeFacts {
    std::set<std::string> vars;  // union of out_vars: output schema
    uint64_t row_bound = kNoEstimate;
    int stage = 0;
    size_t env_index = 0;  // this node's slot in nodes_ (pre-order)
  };

  SubtreeFacts Visit(const PlanNode& node, const std::string& path,
                     bool blocking_above) {
    size_t env_index = nodes_.size();
    nodes_.emplace_back();  // pre-order slot, filled after children return

    bool child_blocking = blocking_above || IsBlocking(node);
    std::vector<SubtreeFacts> child_facts;
    child_facts.reserve(node.children.size());
    for (size_t i = 0; i < node.children.size(); ++i) {
      child_facts.push_back(Visit(*node.children[i],
                                  path + "." + std::to_string(i),
                                  child_blocking));
    }

    SubtreeFacts facts;
    facts.env_index = env_index;
    for (const auto& child : child_facts) {
      facts.vars.insert(child.vars.begin(), child.vars.end());
      facts.stage = std::max(facts.stage, child.stage);
    }
    facts.vars.insert(node.out_vars.begin(), node.out_vars.end());
    if (IsShuffleBarrier(node)) ++facts.stage;
    facts.row_bound = RowBound(node, child_facts);

    uint64_t width = std::max<uint64_t>(1, facts.vars.size());
    NodeEnvelope& env = nodes_[env_index];
    env.path = path;
    env.kind = node.kind;
    env.row_bound = facts.row_bound;
    env.width = width;
    env.output_bytes = facts.row_bound == kNoEstimate
                           ? kUnboundedBytes
                           : TableBytes(facts.row_bound, width);
    env.stage = facts.stage;
    AddWorkingSets(node, path, child_facts, &env);

    if (node.children.empty() && facts.row_bound == kNoEstimate &&
        blocking_above) {
      Report(Severity::kWarn, "RS003", node, path,
             "leaf with no cardinality bound feeds a blocking operator — "
             "its working set has no static byte envelope",
             "annotate the scan with its base-relation size "
             "(max_cardinality) so the envelope stays bounded");
    }
    return facts;
  }

  std::vector<NodeEnvelope> TakeNodes() { return std::move(nodes_); }
  std::vector<Diagnostic> TakeDiagnostics() { return std::move(diags_); }

 private:
  /// Sound output-row bound. Leaves prefer the planner's declared cap over
  /// its selectivity estimate; interior bounds are structural: equi-joins
  /// cannot exceed the input product, and on key-constrained inputs stay
  /// within fanout headroom of the larger side; Cartesian products are the
  /// product. An explicit max_cardinality tightens any derived bound.
  uint64_t RowBound(const PlanNode& node,
                    const std::vector<SubtreeFacts>& children) const {
    uint64_t derived;
    if (children.empty()) {
      derived = node.max_cardinality != kNoEstimate ? node.max_cardinality
                                                    : node.est_cardinality;
    } else if (children.size() == 1) {
      // Filter/Project/defensive unary joins: cannot grow the input.
      derived = children[0].row_bound;
    } else {
      derived = children[0].row_bound;
      for (size_t i = 1; i < children.size(); ++i) {
        uint64_t left = derived;
        uint64_t right = children[i].row_bound;
        uint64_t product = SatMul(left, right);
        if (IsJoin(node.kind)) {
          uint64_t fanout = SatMul(std::max(left, right), kJoinFanoutHeadroom);
          derived = std::min(product, fanout);
        } else {
          derived = product;  // Cartesian (and anything unannotated).
        }
      }
    }
    if (node.max_cardinality != kNoEstimate && !children.empty()) {
      derived = std::min(derived, node.max_cardinality);
    }
    return derived;
  }

  /// Working-set and shuffle terms, plus the per-node rules they trigger.
  void AddWorkingSets(const PlanNode& node, const std::string& path,
                      const std::vector<SubtreeFacts>& children,
                      NodeEnvelope* env) {
    if (children.size() < 2) return;
    uint64_t left = nodes_[children[0].env_index].output_bytes;
    uint64_t right = nodes_[children[1].env_index].output_bytes;
    for (size_t i = 2; i < children.size(); ++i) {
      right = SatAdd(right, nodes_[children[i].env_index].output_bytes);
    }
    uint64_t build = std::min(left, right);
    uint64_t inputs = SatAdd(left, right);

    switch (node.kind) {
      case NodeKind::kPartitionedHashJoin:
        env->working_bytes = SatMul(build, kHashBuildFactor);
        if (!node.partition_local) env->shuffle_bytes = inputs;
        break;
      case NodeKind::kBroadcastJoin: {
        uint64_t executors =
            static_cast<uint64_t>(std::max(1, profile_.num_executors));
        env->working_bytes = SatMul(build, executors);
        if (build != kUnboundedBytes &&
            build > profile_.executor_budget_bytes) {
          Report(Severity::kError, "RS001", node, path,
                 "broadcast replica of " + FormatBytesValue(build) +
                     " exceeds the per-executor budget of " +
                     FormatBytesValue(profile_.executor_budget_bytes) +
                     " — every executor holds a full copy",
                 "raise the budget, lower broadcast_threshold_bytes, or "
                 "let the planner fall back to a partitioned join");
        }
        break;
      }
      default:
        // Cartesian products (and star assembly folded the same way) hold
        // both inputs resident while emitting the cross product.
        env->working_bytes = inputs;
        break;
    }

    if ((node.kind == NodeKind::kCartesianProduct ||
         node.kind == NodeKind::kLocalStarMatch) &&
        env->output_bytes != kUnboundedBytes && inputs != kUnboundedBytes &&
        env->output_bytes > SatMul(inputs, kSuperlinearFactor)) {
      Report(Severity::kWarn, "RS005", node, path,
             std::string(node.kind == NodeKind::kCartesianProduct
                             ? "cartesian"
                             : "star") +
                 " working set grows superlinearly: output envelope " +
                 FormatBytesValue(env->output_bytes) + " vs inputs " +
                 FormatBytesValue(inputs),
             "join through a shared variable (or pre-filter the inputs) so "
             "the output stays near-linear in the inputs");
    }
  }

  void Report(Severity severity, const char* rule, const PlanNode& node,
              const std::string& path, std::string message,
              std::string hint) {
    Diagnostic d;
    d.severity = severity;
    d.rule = rule;
    d.node_path = path + " " + NodeKindName(node.kind);
    d.message = std::move(message);
    d.hint = std::move(hint);
    diags_.push_back(std::move(d));
  }

  const ResourceProfile& profile_;
  std::vector<NodeEnvelope> nodes_;
  std::vector<Diagnostic> diags_;
};

/// Widths for the observed fold: same union-of-out_vars schema model as the
/// static side, so envelope and observation use one byte ruler.
uint64_t ObserveNode(const PlanNode& node, std::set<std::string>* vars,
                     ObservedFootprint* out) {
  std::set<std::string> subtree_vars;
  for (const auto& child : node.children) {
    ObserveNode(*child, &subtree_vars, out);
  }
  subtree_vars.insert(node.out_vars.begin(), node.out_vars.end());
  uint64_t width = std::max<uint64_t>(1, subtree_vars.size());
  if (node.actuals && node.actuals->rows_known) {
    out->output_bytes =
        SatAdd(out->output_bytes, TableBytes(node.actuals->rows_out, width));
    ++out->nodes_with_actuals;
  }
  if (vars != nullptr) {
    vars->insert(subtree_vars.begin(), subtree_vars.end());
  }
  return width;
}

}  // namespace

ResourceProfile ResourceProfile::FromCluster(const spark::ClusterConfig& config,
                                             const EngineProfile& engine) {
  ResourceProfile profile;
  profile.engine_name = engine.engine_name;
  profile.num_executors = std::max(1, config.num_executors);
  return profile;
}

ResourceAnalysis AnalyzeResources(const PlanNode& root,
                                  const ResourceProfile& profile) {
  ResourceAnalysis analysis;
  ResourceAnalyzer analyzer(profile);
  analyzer.Visit(root, "0", /*blocking_above=*/false);
  analysis.nodes = analyzer.TakeNodes();
  analysis.findings = analyzer.TakeDiagnostics();

  // ORDER BY / DISTINCT materialize a sort/dedup buffer over the final
  // output; the modifier is a query property, not a plan node, so the
  // profile carries it and the root pays the term.
  if (profile.sort_at_root && !analysis.nodes.empty()) {
    analysis.nodes.front().working_bytes =
        SatAdd(analysis.nodes.front().working_bytes,
               SatMul(analysis.nodes.front().output_bytes, kSortBufferFactor));
  }

  int num_stages = 0;
  for (const auto& env : analysis.nodes) {
    num_stages = std::max(num_stages, env.stage + 1);
    analysis.output_bytes = SatAdd(analysis.output_bytes, env.output_bytes);
  }
  analysis.stages.resize(static_cast<size_t>(num_stages));
  for (int s = 0; s < num_stages; ++s) {
    StageEnvelope& stage = analysis.stages[static_cast<size_t>(s)];
    stage.stage = s;
    for (const auto& env : analysis.nodes) {
      // The simulator retains every computed partition (ClusterConfig
      // retain_uncached_rdds), so all outputs produced up to and including
      // stage s stay live while stage s runs.
      if (env.stage <= s) {
        stage.live_output_bytes =
            SatAdd(stage.live_output_bytes, env.output_bytes);
      }
      if (env.stage == s) {
        stage.working_bytes = SatAdd(stage.working_bytes, env.working_bytes);
        stage.shuffle_bytes = SatAdd(stage.shuffle_bytes, env.shuffle_bytes);
      }
    }
    stage.total_bytes = SatAdd(stage.live_output_bytes,
                               SatAdd(stage.working_bytes,
                                      stage.shuffle_bytes));
    analysis.peak_bytes = std::max(analysis.peak_bytes, stage.total_bytes);
  }
  analysis.bounded = analysis.peak_bytes != kUnboundedBytes;

  if (analysis.bounded && analysis.peak_bytes > profile.ClusterBudget()) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.rule = "RS002";
    d.node_path = std::string("0 ") + NodeKindName(root.kind);
    d.message = "peak stage envelope of " +
                FormatBytesValue(analysis.peak_bytes) +
                " exceeds the cluster budget of " +
                FormatBytesValue(profile.ClusterBudget());
    d.hint = "raise RDFSPARK_MEMORY_BUDGET, add executors, or narrow the "
             "query so less output stays live across stages";
    analysis.findings.push_back(std::move(d));
  }
  return analysis;
}

ObservedFootprint ObserveFootprint(const PlanNode& root) {
  ObservedFootprint out;
  ObserveNode(root, nullptr, &out);
  return out;
}

std::vector<Diagnostic> DriftFindings(uint64_t envelope_output_bytes,
                                      const ObservedFootprint& observed,
                                      double bound) {
  std::vector<Diagnostic> out;
  if (observed.nodes_with_actuals == 0) return out;
  if (envelope_output_bytes == kUnboundedBytes) return out;
  Diagnostic d;
  d.severity = Severity::kWarn;
  d.rule = "RS006";
  d.node_path = "0 envelope";
  if (observed.output_bytes > envelope_output_bytes) {
    d.message = "observed output of " +
                FormatBytesValue(observed.output_bytes) +
                " exceeds the assumed envelope of " +
                FormatBytesValue(envelope_output_bytes) +
                " — the cached plan's bound is no longer sound";
    d.hint = "re-plan against current statistics (drop the cached plan or "
             "bump the dataset epoch)";
    out.push_back(std::move(d));
    return out;
  }
  if (observed.output_bytes > 0 &&
      static_cast<double>(envelope_output_bytes) >
          bound * static_cast<double>(observed.output_bytes)) {
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2f",
                  static_cast<double>(envelope_output_bytes) /
                      static_cast<double>(observed.output_bytes));
    d.message = "assumed envelope of " +
                FormatBytesValue(envelope_output_bytes) + " is " + ratio +
                "x the observed " + FormatBytesValue(observed.output_bytes) +
                " — capacity admission is over-conservative for this plan";
    d.hint = "refresh planner statistics so scan caps track the data";
    out.push_back(std::move(d));
  }
  return out;
}

namespace {

/// Pre-order walk matching ResourceAnalyzer::Visit's slot order.
void CalibrateNode(const PlanNode& node, const ResourceAnalysis& analysis,
                   size_t* index, CalibrationSample* out) {
  size_t slot = (*index)++;
  for (const auto& child : node.children) {
    CalibrateNode(*child, analysis, index, out);
  }
  if (!node.children.empty() || slot >= analysis.nodes.size()) return;
  const NodeEnvelope& env = analysis.nodes[slot];
  if (env.output_bytes == kUnboundedBytes) return;
  if (node.actuals == nullptr || !node.actuals->rows_known) return;
  out->envelope_bytes = SatAdd(out->envelope_bytes, env.output_bytes);
  out->observed_bytes =
      SatAdd(out->observed_bytes, TableBytes(node.actuals->rows_out,
                                             env.width));
  ++out->leaves;
}

}  // namespace

CalibrationSample CalibrateScans(const PlanNode& root,
                                 const ResourceAnalysis& analysis) {
  CalibrationSample out;
  size_t index = 0;
  CalibrateNode(root, analysis, &index, &out);
  return out;
}

std::string RenderEnvelope(const ResourceAnalysis& analysis) {
  std::string out;
  for (const auto& stage : analysis.stages) {
    out += "stage " + std::to_string(stage.stage) +
           ": live=" + FormatBytesValue(stage.live_output_bytes) +
           " working=" + FormatBytesValue(stage.working_bytes) +
           " shuffle=" + FormatBytesValue(stage.shuffle_bytes) +
           " total=" + FormatBytesValue(stage.total_bytes) + "\n";
  }
  out += "peak envelope: " + FormatBytesValue(analysis.peak_bytes) +
         " across " + std::to_string(analysis.stages.size()) + " stage" +
         (analysis.stages.size() == 1 ? "" : "s") +
         (analysis.bounded ? "" : " (unbounded)") + "\n";
  out += "operator outputs: " + FormatBytesValue(analysis.output_bytes) +
         " over " + std::to_string(analysis.nodes.size()) + " node" +
         (analysis.nodes.size() == 1 ? "" : "s") + "\n";
  return out;
}

}  // namespace rdfspark::systems::plan
