#ifndef RDFSPARK_SYSTEMS_PLAN_PLANNER_UTILS_H_
#define RDFSPARK_SYSTEMS_PLAN_PLANNER_UTILS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sparql/ast.h"
#include "systems/common.h"

namespace rdfspark::systems::plan {

/// Cost of one triple pattern under a system's statistics (estimated rows).
using PatternCost = std::function<uint64_t(const sparql::TriplePattern&)>;

/// Orders BGP patterns greedily so each one (when possible) shares a
/// variable with the already-ordered prefix, starting from `first`.
std::vector<sparql::TriplePattern> OrderConnected(
    std::vector<sparql::TriplePattern> bgp, size_t first);

/// The greedy cost-based order SPARQLGX and GF-SPARQL document: start at the
/// globally cheapest pattern (earliest minimum), then repeatedly pick the
/// unused pattern preferring (a) connectivity to the chosen prefix and
/// (b) lowest cost, ties resolved by input position.
std::vector<sparql::TriplePattern> GreedyConnectedOrder(
    const std::vector<sparql::TriplePattern>& bgp, const PatternCost& cost);

/// The SPARQL-GPP hybrid order: sort pattern indices by ascending cost
/// (std::sort — deliberately matching the engine's historical tie behaviour)
/// and then walk the sorted list keeping the sequence connected. Returns
/// indices into `bgp`.
std::vector<size_t> SortedConnectedOrder(
    const std::vector<sparql::TriplePattern>& bgp, const PatternCost& cost);

}  // namespace rdfspark::systems::plan

#endif  // RDFSPARK_SYSTEMS_PLAN_PLANNER_UTILS_H_
