#include "systems/plan/analyze.h"

#include <cstdint>
#include <vector>

#include "common/string_util.h"
#include "spark/sql/dataframe.h"
#include "systems/batch.h"
#include "systems/common.h"

namespace rdfspark::systems::plan {

namespace {

// Row counters for the payload representations shared by several engines.
// Engines with TU-local payload types register their own (see analyze.h).
// Batch payloads: one IdTable (or keyed batch / per-vertex table) per
// partition element; rows out is the sum of batch sizes.
const BatchPayloadRowCounterRegistration<sparql::IdTable,
                                         uint64_t (*)(const sparql::IdTable&)>
    kBatchRdd(+[](const sparql::IdTable& b) -> uint64_t { return b.size(); });
const BatchPayloadRowCounterRegistration<KeyedBatch,
                                         uint64_t (*)(const KeyedBatch&)>
    kKeyedBatchRdd(
        +[](const KeyedBatch& b) -> uint64_t { return b.rows.size(); });
const BatchPayloadRowCounterRegistration<
    std::pair<int64_t, sparql::IdTable>,
    uint64_t (*)(const std::pair<int64_t, sparql::IdTable>&)>
    kVertexBatchRdd(+[](const std::pair<int64_t, sparql::IdTable>& kv)
                        -> uint64_t { return kv.second.size(); });

struct DriverPayloadRegistration {
  DriverPayloadRegistration() {
    // Driver-side flat tables (SparkRDF's collected intermediates).
    RegisterPayloadRowCounter(
        [](const PlanPayload& payload) -> std::optional<uint64_t> {
          const auto* rows = std::any_cast<sparql::IdTable>(&payload);
          if (rows == nullptr) return std::nullopt;
          return rows->size();
        });
    // DataFrames are eager; NumRows just sums batch sizes.
    RegisterPayloadRowCounter(
        [](const PlanPayload& payload) -> std::optional<uint64_t> {
          const auto* df = std::any_cast<spark::sql::DataFrame>(&payload);
          if (df == nullptr || !df->valid()) return std::nullopt;
          return df->NumRows();
        });
  }
};
const DriverPayloadRegistration kDriverPayloads;

std::string EstimateError(const PlanNode& node) {
  if (node.actuals == nullptr || !node.actuals->rows_known ||
      node.est_cardinality == kNoEstimate) {
    return "-";
  }
  uint64_t act = node.actuals->rows_out;
  if (node.est_cardinality == 0) return act == 0 ? "1.00x" : "inf";
  return FormatDouble(static_cast<double>(act) /
                          static_cast<double>(node.est_cardinality),
                      2) +
         "x";
}

void RenderNode(const PlanNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(NodeKindName(node.kind));
  std::string bracket = AccessPathName(node.access_path);
  if (!node.detail.empty()) {
    if (!bracket.empty()) bracket += " ";
    bracket += node.detail;
  }
  if (!bracket.empty()) {
    out->append(" [");
    out->append(bracket);
    out->append("]");
  }
  out->append(" (est=");
  out->append(node.est_cardinality == kNoEstimate
                  ? std::string("?")
                  : std::to_string(node.est_cardinality));
  if (node.actuals != nullptr) {
    const spark::OpStats& a = *node.actuals;
    out->append(" act=");
    out->append(a.rows_known ? std::to_string(a.rows_out)
                             : std::string("?"));
    out->append(" err=");
    out->append(EstimateError(node));
    out->append(")");
    auto emit = [out](const std::string& part) {
      out->append(" ");
      out->append(part);
    };
    if (a.join_comparisons > 0) {
      emit("cmp=" + std::to_string(a.join_comparisons.value()));
    }
    if (a.shuffle_records > 0 || a.shuffle_bytes > 0) {
      emit("shuf=" + std::to_string(a.shuffle_records.value()) + "/" +
           std::to_string(a.shuffle_bytes.value()) + "B");
    }
    if (a.remote_shuffle_bytes > 0) {
      emit("rmt=" + std::to_string(a.remote_shuffle_bytes.value()) + "B");
    }
    if (a.broadcast_bytes > 0) {
      emit("bcast=" + std::to_string(a.broadcast_bytes.value()) + "B");
    }
    if (a.local_read_records > 0 || a.remote_read_records > 0) {
      emit("reads=L" + std::to_string(a.local_read_records.value()) + "/R" +
           std::to_string(a.remote_read_records.value()));
    }
    if (a.tasks > 0) emit("tasks=" + std::to_string(a.tasks.value()));
    if (a.busy_ns > 0) {
      emit("busy=" +
           FormatDouble(static_cast<double>(a.busy_ns.value()) / 1e6, 3) +
           "ms");
    }
  } else {
    out->append(")");
  }
  out->append("\n");
  for (const auto& child : node.children) {
    RenderNode(*child, depth + 1, out);
  }
}

}  // namespace

std::string ExplainAnalyze(const PlanNode& root) {
  std::string out;
  RenderNode(root, 0, &out);
  return out;
}

double MaxEstimateErrorFactor(const PlanNode& root) {
  double worst = 0.0;
  if (root.actuals != nullptr && root.actuals->rows_known &&
      root.est_cardinality != kNoEstimate) {
    double est = static_cast<double>(root.est_cardinality);
    double act = static_cast<double>(root.actuals->rows_out);
    double err;
    if (est == 0.0 && act == 0.0) {
      err = 1.0;
    } else if (est == 0.0 || act == 0.0) {
      err = est + act;  // one side is zero: error = the other's magnitude
    } else {
      err = act > est ? act / est : est / act;
    }
    worst = err;
  }
  for (const auto& child : root.children) {
    double err = MaxEstimateErrorFactor(*child);
    if (err > worst) worst = err;
  }
  return worst;
}

namespace {

std::string LeafPredicate(const std::string& detail) {
  size_t open = detail.find('<');
  size_t close = detail.find('>', open == std::string::npos ? 0 : open);
  if (open != std::string::npos && close != std::string::npos) {
    return detail.substr(open, close - open + 1);
  }
  size_t end = detail.find(' ');
  if (end == std::string::npos) end = detail.size();
  return end == 0 ? std::string("?") : detail.substr(0, end);
}

void CollectLeaves(const PlanNode& node, std::vector<LeafActual>* out) {
  if (node.children.empty()) {
    if (node.actuals != nullptr && node.actuals->rows_known) {
      LeafActual leaf;
      std::string access = AccessPathName(node.access_path);
      leaf.detail = access.empty() ? node.detail
                                   : access + " " + node.detail;
      leaf.predicate = LeafPredicate(node.detail);
      leaf.est_rows = node.est_cardinality == kNoEstimate
                          ? 0
                          : node.est_cardinality;
      leaf.actual_rows = node.actuals->rows_out;
      out->push_back(std::move(leaf));
    }
    return;
  }
  for (const auto& child : node.children) CollectLeaves(*child, out);
}

}  // namespace

std::vector<LeafActual> CollectLeafActuals(const PlanNode& root) {
  std::vector<LeafActual> out;
  CollectLeaves(root, &out);
  return out;
}

}  // namespace rdfspark::systems::plan
