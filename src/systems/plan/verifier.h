#ifndef RDFSPARK_SYSTEMS_PLAN_VERIFIER_H_
#define RDFSPARK_SYSTEMS_PLAN_VERIFIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "systems/plan/diagnostics.h"
#include "systems/plan/plan.h"

namespace rdfspark::systems::plan {

/// The storage/layout facts the verifier needs about the engine that built a
/// plan — Table II's partitioning column reduced to checkable booleans. Each
/// engine exposes its profile via BgpEngineBase::VerifyProfile().
struct EngineProfile {
  std::string engine_name;
  /// Triples are hash-partitioned by subject, so same-subject work is
  /// partition-local (HAQWA fragmentation, SparkRDF pre-partitioning).
  bool subject_partitioned = false;
  /// Storage is split per predicate (SPARQLGX VP, S2RDF VP/ExtVP): a scan
  /// with an unbounded predicate must union every predicate table.
  bool vertical_partitioned = false;
  /// The layout co-locates a subject's whole star (subject-hash fragments,
  /// Spar(k)ql's node model), making LocalStarMatch sound.
  bool star_local_layout = false;
  /// Build-side size ceiling for broadcast joins; 0 means the engine never
  /// broadcasts (BC001 is skipped).
  uint64_t broadcast_threshold_bytes = 0;
};

/// Static analysis over a physical plan. Pure: touches no Spark state,
/// charges no metrics. Rule catalog (see DESIGN.md for the paper claim each
/// rule encodes):
///   SC001 ERROR  consumed variable not produced by any descendant
///   SC002 ERROR  equi-join with no key over two non-empty disjoint schemas
///   CP001 WARN   CartesianProduct inside a multi-pattern BGP
///   BC001 WARN   broadcast build side above the engine's size threshold
///   ST001 ERROR  LocalStarMatch without a star-local storage layout
///   ST001 INFO   same-subject star shuffled on a subject-partitioned engine
///   VP001 WARN   unbounded-predicate full scan on vertical partitioning
/// Findings come back in deterministic tree order (node-local checks as the
/// walk descends, schema checks as it returns).
std::vector<Diagnostic> VerifyPlan(const PlanNode& root,
                                   const EngineProfile& profile);

/// Debug-check gate: formats every ERROR-level finding into a failed Status
/// (kInvalidArgument); OK when the plan has no errors.
Status VerifyForExecution(const PlanNode& root, const EngineProfile& profile);

}  // namespace rdfspark::systems::plan

#endif  // RDFSPARK_SYSTEMS_PLAN_VERIFIER_H_
