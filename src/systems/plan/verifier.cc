#include "systems/plan/verifier.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace rdfspark::systems::plan {

namespace {

/// Per-int64-cell storage estimate, matching the DataFrame size model the
/// broadcast planner itself uses (Column::MemoryBytes ~ 9 bytes/value).
constexpr uint64_t kBytesPerCell = 9;

/// Facts about a subtree gathered on the way up the recursion.
struct SubtreeInfo {
  std::set<std::string> produced;  // union of out_vars over the subtree
  int scan_leaves = 0;             // PatternScan/LocalStarMatch leaves
  /// Non-empty iff every scan leaf below binds its subject to this one
  /// variable — the subtree matches a same-subject star.
  std::string uniform_subject;
};

bool IsScanLeaf(const PlanNode& node) {
  return node.children.empty() && (node.kind == NodeKind::kPatternScan ||
                                   node.kind == NodeKind::kLocalStarMatch);
}

std::string JoinVars(const std::set<std::string>& vars) {
  std::string out;
  for (const auto& v : vars) {
    if (!out.empty()) out += " ";
    out += "?" + v;
  }
  return out;
}

/// Estimated materialized size of a subtree's output, or kNoEstimate when
/// the planner gave no row estimate.
uint64_t EstimatedBytes(const PlanNode& node, const SubtreeInfo& info) {
  if (node.est_cardinality == kNoEstimate) return kNoEstimate;
  uint64_t width = std::max<uint64_t>(1, info.produced.size());
  return node.est_cardinality * width * kBytesPerCell;
}

class Verifier {
 public:
  Verifier(const EngineProfile& profile, int total_scan_leaves)
      : profile_(profile), total_scan_leaves_(total_scan_leaves) {}

  SubtreeInfo Visit(const PlanNode& node, const std::string& path) {
    CheckNode(node, path);
    SubtreeInfo info;
    if (IsScanLeaf(node)) {
      info.scan_leaves = 1;
      info.uniform_subject = node.subject_var;
    }
    std::vector<SubtreeInfo> child_infos;
    child_infos.reserve(node.children.size());
    for (size_t i = 0; i < node.children.size(); ++i) {
      child_infos.push_back(
          Visit(*node.children[i], path + "." + std::to_string(i)));
    }
    CheckWithChildren(node, path, child_infos);
    for (auto& child : child_infos) {
      info.scan_leaves += child.scan_leaves;
      info.produced.insert(child.produced.begin(), child.produced.end());
    }
    info.produced.insert(node.out_vars.begin(), node.out_vars.end());
    info.uniform_subject = MergeUniformSubject(node, child_infos);
    return info;
  }

  std::vector<Diagnostic> TakeDiagnostics() { return std::move(diags_); }

 private:
  void Report(Severity severity, const char* rule, const PlanNode& node,
              const std::string& path, std::string message,
              std::string hint) {
    Diagnostic d;
    d.severity = severity;
    d.rule = rule;
    d.node_path = path + " " + NodeKindName(node.kind);
    d.message = std::move(message);
    d.hint = std::move(hint);
    diags_.push_back(std::move(d));
  }

  /// Checks needing only the node itself (emitted before child findings so
  /// the output reads in pre-order).
  void CheckNode(const PlanNode& node, const std::string& path) {
    if (node.kind == NodeKind::kCartesianProduct && total_scan_leaves_ >= 2) {
      Report(Severity::kWarn, "CP001", node, path,
             "Cartesian product in a multi-pattern BGP — the result grows "
             "as the product of both sides",
             "reorder patterns so consecutive joins share a variable, or "
             "pre-filter the smaller side");
    }
    if (node.kind == NodeKind::kLocalStarMatch &&
        !profile_.star_local_layout) {
      Report(Severity::kError, "ST001", node, path,
             "LocalStarMatch on engine '" + profile_.engine_name +
                 "' whose storage layout does not co-locate subject stars — "
                 "star fragments split across partitions would drop matches",
             "subject-hash partition the data (HAQWA fragmentation) or "
             "evaluate the star with distributed joins");
    }
    if (profile_.vertical_partitioned && node.kind == NodeKind::kPatternScan &&
        node.access_path == AccessPath::kFullScan) {
      Report(Severity::kWarn, "VP001", node, path,
             "unbounded-predicate scan on a vertically partitioned store — "
             "every predicate table must be read and unioned",
             "bind the predicate, or route the pattern to an engine that "
             "keeps a single triple relation");
    }
  }

  /// Checks needing the children's schemas.
  void CheckWithChildren(const PlanNode& node, const std::string& path,
                         const std::vector<SubtreeInfo>& children) {
    std::set<std::string> available;
    for (const auto& child : children) {
      available.insert(child.produced.begin(), child.produced.end());
    }
    // SC001: every consumed variable must come from a descendant. Leaves
    // with key_vars have nothing below them by construction, so the rule
    // only applies to interior nodes.
    if (!node.children.empty()) {
      std::set<std::string> missing;
      for (const auto& key : node.key_vars) {
        if (!available.contains(key)) missing.insert(key);
      }
      if (!missing.empty()) {
        Report(Severity::kError, "SC001", node, path,
               "consumes " + JoinVars(missing) +
                   " which no descendant produces",
               "the planner must scan a pattern binding the variable below "
               "this operator");
      }
    }
    bool equi_join = node.kind == NodeKind::kPartitionedHashJoin ||
                     node.kind == NodeKind::kBroadcastJoin;
    // SC002: an equi-join that declares no key over two disjoint non-empty
    // schemas silently degenerates to a Cartesian product.
    if (equi_join && children.size() == 2 && node.key_vars.empty() &&
        !children[0].produced.empty() && !children[1].produced.empty()) {
      std::set<std::string> shared;
      std::set_intersection(
          children[0].produced.begin(), children[0].produced.end(),
          children[1].produced.begin(), children[1].produced.end(),
          std::inserter(shared, shared.begin()));
      if (shared.empty()) {
        Report(Severity::kError, "SC002", node, path,
               "equi-join between disjoint schemas {" +
                   JoinVars(children[0].produced) + "} and {" +
                   JoinVars(children[1].produced) + "} with no join key",
               "make the fallback explicit with a CartesianProduct node, or "
               "fix the join order so the sides share a variable");
      }
    }
    // BC001: the broadcast build side (the smaller estimated input) must fit
    // under the engine's threshold; estimates of kNoEstimate are skipped.
    if (node.kind == NodeKind::kBroadcastJoin && children.size() == 2 &&
        profile_.broadcast_threshold_bytes > 0) {
      uint64_t build_bytes = kNoEstimate;
      for (size_t i = 0; i < children.size(); ++i) {
        uint64_t bytes = EstimatedBytes(*node.children[i], children[i]);
        if (bytes < build_bytes) build_bytes = bytes;
      }
      if (build_bytes != kNoEstimate &&
          build_bytes > profile_.broadcast_threshold_bytes) {
        Report(Severity::kWarn, "BC001", node, path,
               "broadcast build side estimated at " +
                   std::to_string(build_bytes) + " bytes exceeds the " +
                   std::to_string(profile_.broadcast_threshold_bytes) +
                   "-byte threshold — every executor would copy it",
               "use a partitioned hash join, or tighten the build side's "
               "selectivity before broadcasting");
      }
    }
    // ST001 (missed locality): a same-subject star evaluated by shuffle
    // joins although the engine already partitions by subject.
    if (node.kind == NodeKind::kPartitionedHashJoin &&
        profile_.subject_partitioned && !node.partition_local &&
        node.key_vars.size() == 1 && children.size() == 2 &&
        children[0].uniform_subject == node.key_vars[0] &&
        children[1].uniform_subject == node.key_vars[0]) {
      Report(Severity::kInfo, "ST001", node, path,
             "same-subject star joined on ?" + node.key_vars[0] +
                 " via a shuffle although '" + profile_.engine_name +
                 "' partitions by subject — the join could be "
                 "partition-local",
             "match the star within partitions (LocalStarMatch) or mark the "
             "join co-partitioned");
    }
  }

  /// A subtree matches a same-subject star when every scan leaf below binds
  /// its subject to the same variable.
  static std::string MergeUniformSubject(
      const PlanNode& node, const std::vector<SubtreeInfo>& children) {
    if (IsScanLeaf(node)) return node.subject_var;
    std::string subject;
    for (const auto& child : children) {
      if (child.scan_leaves == 0) continue;
      if (child.uniform_subject.empty()) return "";
      if (subject.empty()) {
        subject = child.uniform_subject;
      } else if (subject != child.uniform_subject) {
        return "";
      }
    }
    return subject;
  }

  const EngineProfile& profile_;
  const int total_scan_leaves_;
  std::vector<Diagnostic> diags_;
};

int CountScanLeaves(const PlanNode& node) {
  if (IsScanLeaf(node)) return 1;
  int count = 0;
  for (const auto& child : node.children) count += CountScanLeaves(*child);
  return count;
}

}  // namespace

std::vector<Diagnostic> VerifyPlan(const PlanNode& root,
                                   const EngineProfile& profile) {
  Verifier verifier(profile, CountScanLeaves(root));
  verifier.Visit(root, "0");
  return verifier.TakeDiagnostics();
}

Status VerifyForExecution(const PlanNode& root,
                          const EngineProfile& profile) {
  std::vector<Diagnostic> errors = ErrorsOnly(VerifyPlan(root, profile));
  if (errors.empty()) return Status::OK();
  std::string message = "plan verification failed:\n";
  message += FormatDiagnostics(errors);
  return Status::InvalidArgument(message);
}

}  // namespace rdfspark::systems::plan
