#ifndef RDFSPARK_SYSTEMS_PLAN_PLAN_H_
#define RDFSPARK_SYSTEMS_PLAN_PLAN_H_

#include <any>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "spark/context.h"
#include "sparql/binding.h"

namespace rdfspark::spark {
class RddNodeBase;
}  // namespace rdfspark::spark

namespace rdfspark::systems::plan {

/// Physical operators shared by all nine reproduced systems. Each engine's
/// planner maps its documented evaluation strategy onto this algebra so plan
/// shapes (Cartesian fallbacks, broadcast vs partitioned joins, local star
/// matching) become assertable program output instead of implicit code paths.
enum class NodeKind {
  kPatternScan,          // produce the matches of one triple pattern
  kPartitionedHashJoin,  // shuffle/co-partitioned equi-join
  kBroadcastJoin,        // small side replicated to every executor
  kCartesianProduct,     // no shared variable (or deliberate fallback)
  kLocalStarMatch,       // subject-star fragment matched within a partition
  kFilter,               // row-level predicate (driver- or executor-side)
  kProject,              // final projection / conversion to a BindingTable
};

const char* NodeKindName(NodeKind k);

/// How a PatternScan reaches its data (Table II's storage dimension).
enum class AccessPath {
  kNone,            // not a scan, or not applicable
  kFullScan,        // whole triple relation
  kVpTable,         // vertical-partitioning table of one predicate
  kExtVpTable,      // semi-join reduced ExtVP sub-table
  kSubjectStar,     // subject-hash fragment, matched locally
  kGraphTraversal,  // edge/vertex traversal over a graph abstraction
  kClassIndex,      // class-based index file (MESG CR/RC/CRC levels)
  kReplica,         // workload-aware replicated join result
};

const char* AccessPathName(AccessPath a);

/// est_cardinality value meaning "the planner has no estimate".
inline constexpr uint64_t kNoEstimate = std::numeric_limits<uint64_t>::max();

struct PlanNode;
using PlanPtr = std::unique_ptr<PlanNode>;

/// Intermediate results flowing between plan operators. Engines use their
/// native representation (an Rdd, a DataFrame, driver-side rows); only the
/// root is required to produce a sparql::BindingTable.
using PlanPayload = std::any;

/// Executes one operator given its children's payloads (post-order). A null
/// exec marks a descriptive node: monolithic back-ends (Spark SQL's Catalyst,
/// GraphFrames' motif matcher) run the whole tree in the root's exec, and the
/// inner nodes document the plan the back-end will follow.
using ExecFn = std::function<Result<PlanPayload>(std::vector<PlanPayload>)>;

/// One node of a physical plan: what the operator is (for EXPLAIN and the
/// plan-shape assertions) plus how to run it (for the shared executor).
///
/// The schema annotations (out_vars / key_vars / subject_var /
/// partition_local) feed the static verifier (verifier.h); they are not part
/// of the EXPLAIN text contract. out_vars lists the variables this node
/// itself binds (scans and constant-result leaves); a subtree's full output
/// schema is the union over the subtree. key_vars lists the variables the
/// operator consumes: equi-join keys, Filter predicate variables, Project
/// output columns. An empty key_vars means "no requirement declared", so
/// unannotated plans verify vacuously.
struct PlanNode {
  NodeKind kind = NodeKind::kProject;
  AccessPath access_path = AccessPath::kNone;
  std::string detail;                     // operator-specific annotation
  uint64_t est_cardinality = kNoEstimate; // planner's output-row estimate
  /// Planner's *sound* output upper bound, distinct from the selectivity
  /// estimate above: a scan over predicate p can never yield more rows than
  /// the p-relation holds, however selective the planner guesses it is.
  /// Engines annotate scans with the base-relation size; the Tier D
  /// resource analyzer (resource.h) prefers this cap over est_cardinality
  /// when deriving byte envelopes, which keeps envelopes sound even where
  /// estimates under-shoot. kNoEstimate = no bound known.
  uint64_t max_cardinality = kNoEstimate;
  std::vector<std::string> out_vars;      // variables bound by this node
  std::vector<std::string> key_vars;      // variables consumed by this node
  std::string subject_var;  // scan's subject variable (empty if constant)
  bool partition_local = false;  // join provably avoids a shuffle
  std::vector<PlanPtr> children;
  ExecFn exec;

  /// Runtime actuals of the last analyzed execution (EXPLAIN ANALYZE):
  /// attached by PlanExecutor when collect_actuals is on, null otherwise.
  /// Mutable because attaching observations does not change what the plan
  /// *is* — executors run `const PlanNode&` trees.
  mutable std::shared_ptr<spark::OpStats> actuals;
};

/// Builders (children evaluated left to right by the executor).
PlanPtr MakeScan(NodeKind kind, AccessPath access, std::string detail,
                 uint64_t est, ExecFn exec);
PlanPtr MakeUnary(NodeKind kind, std::string detail, PlanPtr child,
                  ExecFn exec);
PlanPtr MakeBinary(NodeKind kind, std::string detail, PlanPtr left,
                   PlanPtr right, ExecFn exec);

/// A leaf Project returning a fixed table — the planner proved the answer
/// (unit table for empty BGPs, empty table for impossible constants).
PlanPtr ConstantResultPlan(sparql::BindingTable table, std::string detail);

/// Deterministic indented plan tree. Format contract (see DESIGN.md):
///   <Kind> [<access> <detail>] (est=<n>|?)
/// with two-space indentation per level; the bracket is omitted when both
/// access path and detail are empty; est prints "?" for kNoEstimate.
std::string Explain(const PlanNode& root);

/// Counts the rows inside an engine-native payload, or nullopt when the
/// payload is not the counter's type. Registered counters let the analyzing
/// executor read every operator's output cardinality after a run without
/// the plan layer knowing the engines' intermediate representations (some
/// of which are translation-unit-local). Registration happens from static
/// initializers (see analyze.h); duplicates are harmless.
using PayloadRowCounter =
    std::function<std::optional<uint64_t>(const PlanPayload&)>;

void RegisterPayloadRowCounter(PayloadRowCounter counter);

/// Tries every registered counter (BindingTable is built in); nullopt when
/// no counter recognizes the payload — the node renders "act=?".
std::optional<uint64_t> CountPayloadRows(const PlanPayload& payload);

/// Extracts the RDD lineage node backing an engine-native payload, or null
/// when the payload is not RDD-backed (DataFrames, driver-side rows). Like
/// the row counters, probes are registered from static initializers (see
/// analyze.h) so the plan layer stays ignorant of engine element types.
using PayloadLineageProbe =
    std::function<std::shared_ptr<spark::RddNodeBase>(const PlanPayload&)>;

void RegisterPayloadLineageProbe(PayloadLineageProbe probe);

/// Tries every registered probe; null when none recognizes the payload.
std::shared_ptr<spark::RddNodeBase> ProbePayloadLineage(
    const PlanPayload& payload);

/// Shared executor: post-order walk, each node's exec fed its children's
/// payloads; the root payload must be a sparql::BindingTable.
///
/// With `collect_actuals` on, the executor attaches a fresh OpStats to
/// every node, opens it as the operator scope around the node's exec (so
/// all substrate charges — including lazily deferred RDD computation, via
/// the scope captured at RddNode construction — attribute to the right
/// operator), retains each node's payload until the run completes, and
/// then fills rows_out from the registered payload counters. Actuals are
/// sums of the same charge set regardless of executor threading, so they
/// are bit-identical between executor_threads=1 and N.
class PlanExecutor {
 public:
  explicit PlanExecutor(spark::SparkContext* sc, bool collect_actuals = false)
      : sc_(sc), collect_actuals_(collect_actuals) {}

  Result<sparql::BindingTable> Run(const PlanNode& root);

  /// RDD lineage nodes of the operators the last analyzed Run executed, in
  /// completion order, deduplicated (the lineage-tier analyzer snapshots a
  /// LineageGraph from these). Filled only with collect_actuals; shared
  /// ownership keeps the DAG alive after payloads are released.
  const std::vector<std::shared_ptr<spark::RddNodeBase>>& lineage_roots()
      const {
    return lineage_roots_;
  }

 private:
  Result<PlanPayload> RunNode(const PlanNode& node);

  spark::SparkContext* sc_;
  bool collect_actuals_;
  /// Nodes in completion order with their payload, kept alive so row
  /// counting after the run sees every operator's output.
  std::vector<std::pair<const PlanNode*, PlanPayload>> analyzed_;
  std::vector<std::shared_ptr<spark::RddNodeBase>> lineage_roots_;
};

}  // namespace rdfspark::systems::plan

#endif  // RDFSPARK_SYSTEMS_PLAN_PLAN_H_
