#ifndef RDFSPARK_SYSTEMS_PLAN_DIAGNOSTICS_H_
#define RDFSPARK_SYSTEMS_PLAN_DIAGNOSTICS_H_

#include <string>
#include <vector>

namespace rdfspark::systems::plan {

/// Severity of a plan-verifier finding. ERRORs mean the plan would compute
/// wrong results (or is internally inconsistent) and fail verify-before-
/// execute; WARNs flag plan shapes the paper identifies as performance
/// hazards; INFOs point at missed opportunities.
enum class Severity { kInfo, kWarn, kError };

const char* SeverityName(Severity s);

/// One typed finding from the static plan verifier. `rule` is a stable id
/// (SC001, SC002, CP001, BC001, ST001, VP001); `node_path` locates the node
/// as a dotted child-index path from the root ("0", "0.1.0") plus the node's
/// kind name; `hint` says how to fix or why it is acceptable.
struct Diagnostic {
  Severity severity = Severity::kInfo;
  std::string rule;
  std::string node_path;
  std::string message;
  std::string hint;
};

/// "ERROR [SC001] at 0.1 PartitionedHashJoin: <message> (hint: <hint>)"
std::string FormatDiagnostic(const Diagnostic& d);

/// One FormatDiagnostic line per finding, newline-terminated; empty string
/// when there are no findings.
std::string FormatDiagnostics(const std::vector<Diagnostic>& diags);

bool HasError(const std::vector<Diagnostic>& diags);

/// Orders findings most-severe first, then by rule id, node path and
/// message. Stable, so equal findings keep their emission order.
void SortDiagnostics(std::vector<Diagnostic>* diags);

/// The one rendering shared by every lint surface (`.lint`, plan_lint,
/// dataflow_lint): severity-sorted FormatDiagnostic lines, or the literal
/// "no findings\n" when the list is empty.
std::string RenderDiagnostics(std::vector<Diagnostic> diags);

/// Just the ERROR-level findings, in input order.
std::vector<Diagnostic> ErrorsOnly(const std::vector<Diagnostic>& diags);

}  // namespace rdfspark::systems::plan

#endif  // RDFSPARK_SYSTEMS_PLAN_DIAGNOSTICS_H_
