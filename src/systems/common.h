#ifndef RDFSPARK_SYSTEMS_COMMON_H_
#define RDFSPARK_SYSTEMS_COMMON_H_

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "rdf/store.h"
#include "sparql/ast.h"
#include "sparql/binding.h"

namespace rdfspark::systems {

/// A triple pattern with constants resolved against the dictionary.
/// `impossible` marks patterns whose constant term does not occur in the
/// data at all (they match nothing).
struct EncodedPattern {
  rdf::IdPattern ids;
  sparql::TriplePattern source;
  bool impossible = false;
};

/// Resolves a pattern's constants. Never fails: unknown constants yield
/// impossible=true.
EncodedPattern EncodePattern(const rdf::Dictionary& dict,
                             const sparql::TriplePattern& pattern);

/// Mutable variable schema used while composing distributed joins.
/// IndexOf is O(1): a side map mirrors the ordered variable list, so wide
/// schemas (star queries, synthetic variables) don't pay a linear probe per
/// row extension.
class VarSchema {
 public:
  const std::vector<std::string>& vars() const { return vars_; }
  int IndexOf(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? -1 : it->second;
  }
  /// Adds if missing; returns the index either way.
  int Add(const std::string& name) {
    auto [it, inserted] =
        index_.emplace(name, static_cast<int>(vars_.size()));
    if (inserted) vars_.push_back(name);
    return it->second;
  }

 private:
  std::vector<std::string> vars_;
  std::unordered_map<std::string, int> index_;
};

/// A partial solution row, aligned with a VarSchema.
using IdRow = std::vector<rdf::TermId>;

/// Tries to extend `row` (over `schema`) with the bindings a concrete
/// triple induces under `pattern`; returns false on conflict (repeated
/// variable bound to a different value).
bool ExtendRow(const sparql::TriplePattern& pattern,
               const rdf::EncodedTriple& triple, const VarSchema& schema,
               IdRow* row);

/// Same extension over a raw fixed-width row (a freshly appended IdTable
/// row whose cells are pre-filled with kUnbound). Batch kernels append a
/// row in place, try the extension, and pop it on failure.
bool ExtendRowCells(const sparql::TriplePattern& pattern,
                    const rdf::EncodedTriple& triple, const VarSchema& schema,
                    rdf::TermId* cells);

/// True if `triple` matches the constant slots of `encoded`.
bool MatchesConstants(const EncodedPattern& encoded,
                      const rdf::EncodedTriple& triple);

/// Variables shared between a pattern and an existing schema.
std::vector<std::string> SharedVars(const sparql::TriplePattern& pattern,
                                    const VarSchema& schema);

/// Packs rows into a BindingTable.
sparql::BindingTable ToBindingTable(const VarSchema& schema,
                                    std::vector<IdRow> rows);

/// Adopts an already-flat batch as a BindingTable (rows must be
/// schema-width).
sparql::BindingTable ToBindingTable(const VarSchema& schema,
                                    sparql::IdTable rows);

/// Element-wise merge of two rows over the same schema; nullopt when a
/// variable is bound to different values.
std::optional<IdRow> MergeRows(const IdRow& a, const IdRow& b);

/// Batch form of MergeRows: appends the merge of `a` and `b` to `out`
/// (width out->width(); shorter inputs read as kUnbound) and returns true,
/// or leaves `out` unchanged and returns false on a binding conflict.
bool MergeRowsInto(sparql::IdSpan a, sparql::IdSpan b, sparql::IdTable* out);

/// A star fragment: patterns sharing one subject (variable or constant).
struct SubjectGroup {
  std::string subject_var;  // empty when the subject is a constant
  std::optional<rdf::TermId> subject_const;
  bool impossible = false;  // constant subject absent from the data
  std::vector<sparql::TriplePattern> patterns;
};

/// Decomposes a BGP into subject groups (HAQWA's locally-evaluable
/// sub-queries under subject-hash fragmentation).
std::vector<SubjectGroup> GroupBySubject(
    const std::vector<sparql::TriplePattern>& bgp,
    const rdf::Dictionary& dict);

}  // namespace rdfspark::systems

#endif  // RDFSPARK_SYSTEMS_COMMON_H_
