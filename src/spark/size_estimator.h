#ifndef RDFSPARK_SPARK_SIZE_ESTIMATOR_H_
#define RDFSPARK_SPARK_SIZE_ESTIMATOR_H_

#include <array>
#include <concepts>
#include <cstdint>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <type_traits>
#include <utility>
#include <vector>

namespace rdfspark::spark {

/// Estimated in-memory footprint of a record, used for shuffle-byte and
/// storage accounting. Mirrors Spark's SizeEstimator in spirit: strings pay
/// their character payload plus an object-header-like overhead so that the
/// "dictionary encoding shrinks data" assessment has the right shape.
///
/// All overloads are declared before any definition so composite types
/// resolve regardless of nesting order.

inline uint64_t EstimateSize(const std::string& s);
template <typename T>
  requires std::is_arithmetic_v<T> || std::is_enum_v<T>
uint64_t EstimateSize(T);
template <typename A, typename B>
uint64_t EstimateSize(const std::pair<A, B>& p);
template <typename... Ts>
uint64_t EstimateSize(const std::tuple<Ts...>& t);
template <typename T, size_t N>
uint64_t EstimateSize(const std::array<T, N>& a);
template <typename T>
uint64_t EstimateSize(const std::vector<T>& v);
template <typename T>
uint64_t EstimateSize(const std::optional<T>& o);
template <typename K, typename V, typename H, typename E, typename A>
uint64_t EstimateSize(const std::unordered_map<K, V, H, E, A>& m);
template <typename T>
  requires requires(const T& t) {
    { t.EstimatedByteSize() } -> std::convertible_to<uint64_t>;
  }
uint64_t EstimateSize(const T& t);

inline uint64_t EstimateSize(const std::string& s) {
  return 16 + s.size();  // header + payload
}

template <typename T>
  requires std::is_arithmetic_v<T> || std::is_enum_v<T>
uint64_t EstimateSize(T) {
  return sizeof(T);
}

template <typename A, typename B>
uint64_t EstimateSize(const std::pair<A, B>& p) {
  return EstimateSize(p.first) + EstimateSize(p.second);
}

template <typename... Ts>
uint64_t EstimateSize(const std::tuple<Ts...>& t) {
  return std::apply(
      [](const Ts&... xs) { return (uint64_t{0} + ... + EstimateSize(xs)); },
      t);
}

template <typename T, size_t N>
uint64_t EstimateSize(const std::array<T, N>& a) {
  uint64_t total = 0;
  for (const auto& x : a) total += EstimateSize(x);
  return total;
}

template <typename T>
uint64_t EstimateSize(const std::vector<T>& v) {
  uint64_t total = 24;  // vector header
  for (const auto& x : v) total += EstimateSize(x);
  return total;
}

template <typename T>
uint64_t EstimateSize(const std::optional<T>& o) {
  return 1 + (o ? EstimateSize(*o) : 0);
}

template <typename K, typename V, typename H, typename E, typename A>
uint64_t EstimateSize(const std::unordered_map<K, V, H, E, A>& m) {
  uint64_t total = 48;  // table header
  for (const auto& [k, v] : m) total += 8 + EstimateSize(k) + EstimateSize(v);
  return total;
}

/// Types that know their own flat footprint (e.g. sparql::IdTable, whose
/// rows are fixed-width runs in one buffer) report it directly — shuffles
/// then charge `width * sizeof(TermId)` per row instead of a per-vector
/// object header.
template <typename T>
  requires requires(const T& t) {
    { t.EstimatedByteSize() } -> std::convertible_to<uint64_t>;
  }
uint64_t EstimateSize(const T& t) {
  return t.EstimatedByteSize();
}

}  // namespace rdfspark::spark

#endif  // RDFSPARK_SPARK_SIZE_ESTIMATOR_H_
