#include "spark/scheduler.h"

#include <algorithm>

namespace rdfspark::spark {

namespace {
thread_local bool t_in_worker = false;
}  // namespace

bool TaskScheduler::InWorkerThread() { return t_in_worker; }

TaskScheduler::TaskScheduler(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

TaskScheduler::Batch* TaskScheduler::NextBatchWithWork() {
  if (batches_.empty()) return nullptr;
  // Start the scan at the round-robin cursor so consecutive grabs rotate
  // across batches: with B live batches, each gets every B-th task slot —
  // a small query's partitions interleave with a big one's instead of
  // queueing behind them.
  for (size_t i = 0; i < batches_.size(); ++i) {
    size_t idx = (rr_next_ + i) % batches_.size();
    if (batches_[idx]->next_index < batches_[idx]->count) {
      rr_next_ = (idx + 1) % batches_.size();
      return batches_[idx];
    }
  }
  return nullptr;
}

bool TaskScheduler::RunOneTaskOf(Batch* batch,
                                 std::unique_lock<std::mutex>& lock) {
  if (batch->next_index >= batch->count) return false;
  int index = batch->next_index++;
  --pending_tasks_;
  const std::function<void(int)>* fn = batch->fn;
  lock.unlock();
  try {
    (*fn)(index);
  } catch (...) {
    lock.lock();
    if (!batch->first_error) batch->first_error = std::current_exception();
    if (--batch->unfinished == 0) done_cv_.notify_all();
    return true;
  }
  lock.lock();
  if (--batch->unfinished == 0) done_cv_.notify_all();
  return true;
}

void TaskScheduler::WorkerLoop() {
  t_in_worker = true;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || pending_tasks_ > 0; });
    if (stop_) return;
    while (Batch* batch = NextBatchWithWork()) {
      RunOneTaskOf(batch, lock);
    }
  }
}

void TaskScheduler::ParallelFor(int count,
                                const std::function<void(int)>& fn) {
  if (count <= 0) return;
  Batch batch;
  batch.count = count;
  batch.unfinished = count;
  batch.fn = &fn;
  std::unique_lock<std::mutex> lock(mu_);
  batches_.push_back(&batch);
  pending_tasks_ += count;
  work_cv_.notify_all();
  // The caller works its own batch. While it does, it counts as a worker:
  // a task it runs may itself hit a nested RunParallel (e.g. a lazily
  // materialized shuffle), and that nested call must run inline — waiting
  // for this batch to retire would deadlock on the caller's own task. The
  // caller stays on its own batch (it never steals another driver's
  // tasks), so a request's latency is not inflated by co-tenant work.
  bool was_worker = t_in_worker;
  t_in_worker = true;
  while (RunOneTaskOf(&batch, lock)) {
  }
  t_in_worker = was_worker;
  done_cv_.wait(lock, [&] { return batch.unfinished == 0; });
  batches_.erase(std::find(batches_.begin(), batches_.end(), &batch));
  if (rr_next_ >= batches_.size()) rr_next_ = 0;
  std::exception_ptr err = batch.first_error;
  lock.unlock();
  if (err) std::rethrow_exception(err);
}

}  // namespace rdfspark::spark
