#include "spark/scheduler.h"

namespace rdfspark::spark {

namespace {
thread_local bool t_in_worker = false;
}  // namespace

bool TaskScheduler::InWorkerThread() { return t_in_worker; }

TaskScheduler::TaskScheduler(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

bool TaskScheduler::RunOneTask(std::unique_lock<std::mutex>& lock,
                               uint64_t seq) {
  if (batch_seq_ != seq || batch_fn_ == nullptr ||
      next_index_ >= batch_count_) {
    return false;
  }
  int index = next_index_++;
  const std::function<void(int)>* fn = batch_fn_;
  lock.unlock();
  try {
    (*fn)(index);
  } catch (...) {
    lock.lock();
    if (!first_error_) first_error_ = std::current_exception();
    if (--unfinished_ == 0) done_cv_.notify_all();
    return true;
  }
  lock.lock();
  if (--unfinished_ == 0) done_cv_.notify_all();
  return true;
}

void TaskScheduler::WorkerLoop() {
  t_in_worker = true;
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || batch_seq_ != seen; });
    if (stop_) return;
    seen = batch_seq_;
    while (RunOneTask(lock, seen)) {
    }
  }
}

void TaskScheduler::ParallelFor(int count,
                                const std::function<void(int)>& fn) {
  if (count <= 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  // One batch at a time; a second driver thread queues here until the
  // current batch retires.
  done_cv_.wait(lock, [&] { return batch_fn_ == nullptr; });
  batch_fn_ = &fn;
  batch_count_ = count;
  next_index_ = 0;
  unfinished_ = count;
  uint64_t seq = ++batch_seq_;
  work_cv_.notify_all();
  // The caller works the batch too. While it does, it counts as a worker:
  // a task it runs may itself hit a nested RunParallel (e.g. a lazily
  // materialized shuffle), and that nested call must run inline — waiting
  // for this batch to retire would deadlock on the caller's own task.
  bool was_worker = t_in_worker;
  t_in_worker = true;
  while (RunOneTask(lock, seq)) {
  }
  t_in_worker = was_worker;
  done_cv_.wait(lock, [&] { return unfinished_ == 0; });
  batch_fn_ = nullptr;
  std::exception_ptr err = first_error_;
  first_error_ = nullptr;
  lock.unlock();
  // Wake any driver thread queued on batch_fn_ == nullptr.
  done_cv_.notify_all();
  if (err) std::rethrow_exception(err);
}

}  // namespace rdfspark::spark
