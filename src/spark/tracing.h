#ifndef RDFSPARK_SPARK_TRACING_H_
#define RDFSPARK_SPARK_TRACING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "spark/metrics.h"

namespace rdfspark::spark {

/// Per-operator runtime counters. The plan executor attaches one OpStats to
/// every plan node it runs; the Spark substrate routes each charge to the
/// innermost open operator scope (see OpScopeGuard). All counters are
/// relaxed atomics with commutative updates, so totals are bit-identical
/// for any executor-pool interleaving — the property EXPLAIN ANALYZE's
/// thread-count-invariance tests pin down.
struct OpStats {
  Counter tasks;             ///< Schedulable tasks charged in this scope.
  Counter records_in;        ///< Records processed (compute + task charges).
  Counter join_comparisons;  ///< Candidate pairs examined by joins.
  Counter shuffle_records;   ///< Records written through shuffles.
  Counter shuffle_bytes;     ///< Estimated shuffle write volume.
  Counter remote_shuffle_bytes;  ///< Subset crossing executor boundaries.
  Counter local_read_records;    ///< Partition reads served locally.
  Counter remote_read_records;   ///< Partition reads from other executors.
  Counter broadcast_bytes;       ///< Bytes replicated to every executor.
  Counter busy_ns;  ///< Total busy nanoseconds charged (sum over executors,
                    ///< not critical path — phases fold maxima globally).

  // Output cardinality, filled in by the plan layer after execution by
  // inspecting the operator's payload (not charged through scopes).
  uint64_t rows_out = 0;
  bool rows_known = false;
};

/// Innermost operator scope open on this thread, or null. Charges made by
/// SparkContext route here in addition to the global Metrics.
std::shared_ptr<OpStats> CurrentOpStats();

/// RAII operator scope. Pushing a null stats pointer is a no-op (charges
/// keep attributing to the enclosing scope), so lineage nodes created
/// outside any operator can hold a null scope safely.
///
/// Lazily computed RDD partitions attribute correctly because every
/// RddNode captures CurrentOpStats() at construction and re-installs it
/// around its compute function: work deferred from an operator's exec to a
/// later action still lands on the operator that built the lineage.
class OpScopeGuard {
 public:
  explicit OpScopeGuard(std::shared_ptr<OpStats> stats);
  ~OpScopeGuard();

  OpScopeGuard(const OpScopeGuard&) = delete;
  OpScopeGuard& operator=(const OpScopeGuard&) = delete;

 private:
  bool pushed_ = false;
};

/// What a trace event describes. Job/stage/task mirror Spark's execution
/// hierarchy; the remaining kinds mark data-movement and graph-iteration
/// milestones the assessment cares about.
enum class SpanKind {
  kJob,           ///< One action (instant marker on the driver lane).
  kStage,         ///< One cost phase (shuffle boundary or result stage).
  kTask,          ///< One per-partition task on an executor lane.
  kShuffleWrite,  ///< Map-side shuffle write of one source partition.
  kBroadcast,     ///< Replication of a broadcast value.
  kSuperstep,     ///< One Pregel/fixpoint iteration.
  kServe,         ///< One served request (serving-layer job span).
};

const char* SpanKindName(SpanKind k);

/// One recorded span. Timestamps are simulated nanoseconds (the cost
/// model's clock, not wall time): `ts_ns` is where the span starts on the
/// simulated timeline, `dur_ns` its simulated duration (0 for instants).
/// `lane` is the executor that did the work, -1 for the driver.
struct TraceEvent {
  SpanKind kind = SpanKind::kJob;
  std::string name;
  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;
  int lane = -1;
  uint64_t records = 0;  ///< Records processed / shuffled (kind-specific).
  uint64_t bytes = 0;    ///< Bytes moved (shuffle, broadcast, remote pull).
};

/// Collects TraceEvents into per-thread buffers (no cross-thread contention
/// on the record path beyond first-touch registration). Disabled tracers
/// drop events at a single relaxed load. Exports merge the buffers into a
/// deterministic order: under the serial executor path
/// (executor_threads = 1) two identical runs produce byte-identical
/// exports; under the pool only task-level start offsets may differ (the
/// event multiset is interleaving-independent).
class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one complete span. No-op while disabled.
  void Record(SpanKind kind, std::string name, uint64_t ts_ns,
              uint64_t dur_ns, int lane, uint64_t records = 0,
              uint64_t bytes = 0);

  /// All events, merged across thread buffers and sorted by
  /// (ts, lane, kind, name, dur, records, bytes) — a total order over the
  /// event fields, so the output depends only on the event multiset.
  std::vector<TraceEvent> Merged() const;

  size_t event_count() const;

  /// Drops all recorded events (buffers stay registered).
  void Clear();

  /// Chrome trace-event JSON (load via chrome://tracing or Perfetto).
  /// Lanes map to Chrome "threads": tid 0 is the driver, tid N+1 executor N.
  std::string ToChromeTraceJson() const;

  /// Compact fixed-width text timeline of the merged events.
  std::string ToTimelineText() const;

 private:
  struct ThreadBuf {
    std::vector<TraceEvent> events;
  };

  ThreadBuf* BufForThisThread();

  std::atomic<bool> enabled_{false};
  uint64_t tracer_id_;  ///< Globally unique; keys the thread-local cache.
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
};

}  // namespace rdfspark::spark

#endif  // RDFSPARK_SPARK_TRACING_H_
