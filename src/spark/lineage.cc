#include "spark/lineage.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

namespace rdfspark::spark {

using systems::plan::Diagnostic;
using systems::plan::Severity;

namespace {

/// "rdd <id> <name>" — the lineage analogue of the plan verifier's dotted
/// node path; stable because node ids are assigned serially on the driver.
std::string NodeLabel(const LineageNodeInfo& n) {
  return "rdd " + std::to_string(n.id) + " " + n.name;
}

std::string DescribePartitioner(const PartitionerInfo& p) {
  return p.kind + "/" + std::to_string(p.num_partitions);
}

}  // namespace

LineageGraph LineageGraph::Capture(
    const std::vector<const RddNodeBase*>& roots) {
  LineageGraph g;
  std::unordered_set<int> visited;
  std::function<void(const RddNodeBase*)> visit =
      [&](const RddNodeBase* node) {
        if (node == nullptr) return;
        if (!visited.insert(node->id()).second) return;
        LineageNodeInfo info;
        info.id = node->id();
        info.name = node->name();
        info.num_partitions = node->num_partitions();
        info.is_shuffle = node->is_shuffle();
        info.cached = node->cached();
        info.retained_bytes = node->RetainedBytes();
        info.partitioner = node->partitioner();
        for (const auto& parent : node->parents()) {
          info.parents.push_back(parent->id());
        }
        g.nodes_.push_back(std::move(info));
        for (const auto& parent : node->parents()) visit(parent.get());
      };
  for (const RddNodeBase* root : roots) visit(root);
  std::sort(g.nodes_.begin(), g.nodes_.end(),
            [](const LineageNodeInfo& a, const LineageNodeInfo& b) {
              return a.id < b.id;
            });
  // Derive child edges (consumers) from the parent edges.
  std::unordered_map<int, LineageNodeInfo*> by_id;
  for (auto& n : g.nodes_) by_id[n.id] = &n;
  for (const auto& n : g.nodes_) {
    for (int parent : n.parents) {
      auto it = by_id.find(parent);
      if (it != by_id.end()) it->second->children.push_back(n.id);
    }
  }
  for (auto& n : g.nodes_) std::sort(n.children.begin(), n.children.end());
  // Stage fold: stage(n) = max over parents + [n is wide]. nodes_ is
  // id-sorted and parents always have smaller ids (assigned at
  // construction, parents first), so the forward pass is topological —
  // the same sweep MaxShuffleDepth uses.
  for (auto& n : g.nodes_) {
    int parent_max = 0;
    for (int parent : n.parents) {
      auto it = by_id.find(parent);
      if (it != by_id.end()) {
        parent_max = std::max(parent_max, it->second->stage);
      }
    }
    n.stage = parent_max + (n.is_shuffle ? 1 : 0);
  }
  return g;
}

LineageGraph LineageGraph::Capture(const RddNodeBase* root) {
  return Capture(std::vector<const RddNodeBase*>{root});
}

const LineageNodeInfo* LineageGraph::Find(int id) const {
  for (const auto& n : nodes_) {
    if (n.id == id) return &n;
  }
  return nullptr;
}

int LineageGraph::ShuffleCount() const {
  int count = 0;
  for (const auto& n : nodes_) count += n.is_shuffle ? 1 : 0;
  return count;
}

int LineageGraph::MaxShuffleDepth() const {
  // depth(n) = [n is wide] + max over parents of depth(parent); nodes_ is
  // id-sorted and parents always have smaller ids than children (node ids
  // are assigned at construction, parents first), so one forward pass is a
  // topological sweep.
  std::unordered_map<int, int> depth;
  int max_depth = 0;
  for (const auto& n : nodes_) {
    int d = n.is_shuffle ? 1 : 0;
    int parent_max = 0;
    for (int parent : n.parents) {
      auto it = depth.find(parent);
      if (it != depth.end()) parent_max = std::max(parent_max, it->second);
    }
    d += parent_max;
    depth[n.id] = d;
    max_depth = std::max(max_depth, d);
  }
  return max_depth;
}

uint64_t LineageGraph::TotalRetainedBytes() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) total += n.retained_bytes;
  return total;
}

int LineageGraph::StageCount() const {
  int max_stage = -1;
  for (const auto& n : nodes_) max_stage = std::max(max_stage, n.stage);
  return max_stage + 1;
}

std::vector<Diagnostic> LineageGraph::AnalyzeRetention() const {
  std::vector<Diagnostic> out;
  // Below the floor the "dominant" share is noise: a single small cached
  // table trivially dominates an otherwise-empty snapshot.
  constexpr uint64_t kRetentionFloorBytes = 64 * 1024;
  const uint64_t total = TotalRetainedBytes();
  if (total < kRetentionFloorBytes) return out;
  for (const auto& n : nodes_) {
    // RS004: a persisted node with at most one captured consumer is never
    // re-read — the cache buys nothing a narrow recompute would not —
    // yet it pins the dominant share (> 1/2) of all retained bytes.
    if (!n.cached || n.children.size() > 1) continue;
    if (n.retained_bytes * 2 <= total) continue;
    Diagnostic d;
    d.severity = Severity::kWarn;
    d.rule = "RS004";
    d.node_path = NodeLabel(n);
    d.message = "cached RDD retains " + std::to_string(n.retained_bytes) +
                "B of " + std::to_string(total) +
                "B total with " + std::to_string(n.children.size()) +
                " captured consumer(s); the persist is never re-read";
    d.hint =
        "Uncache() the node after its single consumer, or run the context "
        "with retain_uncached_rdds = false";
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<Diagnostic> LineageGraph::Analyze() const {
  std::vector<Diagnostic> out;

  for (const auto& n : nodes_) {
    // LN001: a narrow, uncached node with several captured consumers is
    // recomputed once per consumer — the missing-cache hazard. Wide nodes
    // are exempt: their shuffle buckets persist in ShuffleState exactly as
    // Spark's shuffle files outlive the task that wrote them.
    if (!n.cached && !n.is_shuffle && n.children.size() >= 2) {
      Diagnostic d;
      d.severity = Severity::kWarn;
      d.rule = "LN001";
      d.node_path = NodeLabel(n);
      d.message = "uncached RDD feeds " + std::to_string(n.children.size()) +
                  " consumers; its partitions are recomputed per consumer";
      d.hint = "persist the shared RDD with Cache() so it computes once";
      out.push_back(std::move(d));
    }

    // LN002: a wide node whose inputs already all carry the node's own
    // partitioner exchanges data that is already in place.
    if (n.is_shuffle && n.partitioner && !n.parents.empty()) {
      bool all_match = true;
      for (int parent_id : n.parents) {
        const LineageNodeInfo* parent = Find(parent_id);
        if (parent == nullptr || !parent->partitioner ||
            !(*parent->partitioner == *n.partitioner)) {
          all_match = false;
          break;
        }
      }
      if (all_match) {
        Diagnostic d;
        d.severity = Severity::kWarn;
        d.rule = "LN002";
        d.node_path = NodeLabel(n);
        d.message = "shuffle re-partitions inputs already partitioned by " +
                    DescribePartitioner(*n.partitioner);
        d.hint =
            "reuse the existing partitioner; PartitionByKey is a no-op on "
            "equal PartitionerInfo";
        out.push_back(std::move(d));
      }
    }
  }

  // LN003: deep wide-dependency chain — each wide edge is a stage barrier.
  constexpr int kDeepShuffleChain = 4;
  int depth = MaxShuffleDepth();
  if (depth >= kDeepShuffleChain) {
    Diagnostic d;
    d.severity = Severity::kInfo;
    d.rule = "LN003";
    d.node_path = "lineage";
    d.message = "longest path crosses " + std::to_string(depth) +
                " shuffles (" + std::to_string(ShuffleCount()) +
                " wide nodes total); each is a stage barrier";
    d.hint =
        "cache intermediate results or collapse join stages to shorten the "
        "critical path";
    out.push_back(std::move(d));
  }

  return out;
}

std::string LineageGraph::ToDot() const {
  std::string out = "digraph lineage {\n  rankdir=BT;\n";
  for (const auto& n : nodes_) {
    out += "  n" + std::to_string(n.id) + " [label=\"#" +
           std::to_string(n.id) + " " + n.name + "\\n" +
           std::to_string(n.num_partitions) + " parts";
    if (n.partitioner) out += " " + DescribePartitioner(*n.partitioner);
    out += "\"";
    if (n.is_shuffle) out += ", shape=box";
    if (n.cached) out += ", style=filled, fillcolor=lightgrey";
    out += "];\n";
  }
  for (const auto& n : nodes_) {
    for (int parent : n.parents) {
      out += "  n" + std::to_string(n.id) + " -> n" + std::to_string(parent);
      if (n.is_shuffle) out += " [style=dashed, label=\"shuffle\"]";
      out += ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace rdfspark::spark
