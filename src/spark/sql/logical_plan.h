#ifndef RDFSPARK_SPARK_SQL_LOGICAL_PLAN_H_
#define RDFSPARK_SPARK_SQL_LOGICAL_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "spark/sql/dataframe.h"
#include "spark/sql/expr.h"

namespace rdfspark::spark::sql {

struct LogicalPlan;
using PlanPtr = std::shared_ptr<LogicalPlan>;

enum class PlanKind {
  kScan,
  kProject,
  kFilter,
  kJoin,
  kAggregate,
  kSort,
  kLimit,
  kDistinct,
};

/// One node of the logical query plan the SQL front-end produces and the
/// Catalyst-style optimizer rewrites. A deliberately plain struct: rules
/// pattern-match on `kind` and rebuild nodes.
struct LogicalPlan {
  PlanKind kind = PlanKind::kScan;

  // Children (kJoin uses both; other non-leaf kinds use `left`).
  PlanPtr left;
  PlanPtr right;

  // kScan.
  std::string table;
  std::string alias;  // empty: keep original column names

  // kProject.
  std::vector<std::pair<Expr, std::string>> projections;

  // kFilter / kJoin condition.
  Expr predicate;

  // kJoin.
  JoinType join_type = JoinType::kInner;
  JoinStrategy join_strategy = JoinStrategy::kAuto;

  // kAggregate.
  std::vector<std::string> group_keys;
  std::vector<AggSpec> aggs;

  // kSort.
  std::vector<std::pair<std::string, bool>> sort_keys;

  // kLimit.
  int64_t limit = -1;

  /// Pretty-prints the plan tree (EXPLAIN-style).
  std::string ToString(int indent = 0) const;
};

PlanPtr MakeScan(std::string table, std::string alias = "");
PlanPtr MakeProject(PlanPtr child,
                    std::vector<std::pair<Expr, std::string>> projections);
PlanPtr MakeFilter(PlanPtr child, Expr predicate);
PlanPtr MakeJoin(PlanPtr left, PlanPtr right, Expr condition,
                 JoinType type = JoinType::kInner,
                 JoinStrategy strategy = JoinStrategy::kAuto);
PlanPtr MakeAggregate(PlanPtr child, std::vector<std::string> group_keys,
                      std::vector<AggSpec> aggs);
PlanPtr MakeSort(PlanPtr child,
                 std::vector<std::pair<std::string, bool>> keys);
PlanPtr MakeLimit(PlanPtr child, int64_t limit);
PlanPtr MakeDistinct(PlanPtr child);

/// Deep copy (optimizer rules mutate copies, never shared inputs).
PlanPtr ClonePlan(const PlanPtr& plan);

}  // namespace rdfspark::spark::sql

#endif  // RDFSPARK_SPARK_SQL_LOGICAL_PLAN_H_
