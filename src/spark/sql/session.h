#ifndef RDFSPARK_SPARK_SQL_SESSION_H_
#define RDFSPARK_SPARK_SQL_SESSION_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "spark/context.h"
#include "spark/sql/optimizer.h"
#include "spark/sql/sql_parser.h"

namespace rdfspark::spark::sql {

/// The Spark SQL entry point: a table catalog plus parse → optimize →
/// execute. Engines register their (ExtVP/VP) tables here and submit SQL
/// text, as S2RDF does on real Spark.
class SqlSession {
 public:
  explicit SqlSession(SparkContext* sc) : sc_(sc) {}

  SparkContext* context() const { return sc_; }

  /// Registers (or replaces) a table.
  void RegisterTable(const std::string& name, DataFrame df) {
    catalog_[name] = std::move(df);
  }
  bool HasTable(const std::string& name) const {
    return catalog_.contains(name);
  }
  Result<DataFrame> Table(const std::string& name) const;
  const Catalog& catalog() const { return catalog_; }

  Optimizer::Options& optimizer_options() { return optimizer_options_; }

  /// Parses, optimizes and executes a SQL query.
  Result<DataFrame> Sql(std::string_view query) const;

  /// Returns the optimized logical plan as text (EXPLAIN).
  Result<std::string> Explain(std::string_view query) const;

  /// Executes an already-built logical plan.
  Result<DataFrame> Execute(const PlanPtr& plan) const;

 private:
  SparkContext* sc_;
  Catalog catalog_;
  Optimizer::Options optimizer_options_;
};

}  // namespace rdfspark::spark::sql

#endif  // RDFSPARK_SPARK_SQL_SESSION_H_
