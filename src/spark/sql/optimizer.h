#ifndef RDFSPARK_SPARK_SQL_OPTIMIZER_H_
#define RDFSPARK_SPARK_SQL_OPTIMIZER_H_

#include <string>
#include <unordered_map>

#include "common/status.h"
#include "spark/sql/logical_plan.h"

namespace rdfspark::spark::sql {

/// Registered tables.
using Catalog = std::unordered_map<std::string, DataFrame>;

/// Rule-based + stats-driven logical optimizer modeled on Catalyst's core
/// behaviours the paper discusses: predicate pushdown below joins, and
/// statistics-based join reordering (greedy smallest-connected-first). The
/// physical broadcast-vs-shuffle choice happens in DataFrame::Join using the
/// size threshold.
class Optimizer {
 public:
  struct Options {
    bool push_filters = true;
    bool reorder_joins = true;
  };

  Optimizer() = default;
  explicit Optimizer(Options options) : options_(options) {}

  /// Returns an optimized copy of `plan`.
  Result<PlanPtr> Optimize(const PlanPtr& plan, const Catalog& catalog) const;

  /// Schema a plan node produces (needs the catalog for scans). Scans with
  /// an alias qualify their columns as "alias.column".
  static Result<Schema> InferSchema(const PlanPtr& plan,
                                    const Catalog& catalog);

  /// Rough output-cardinality estimate used by join reordering.
  static uint64_t EstimateRows(const PlanPtr& plan, const Catalog& catalog);

 private:
  Result<PlanPtr> PushFilters(PlanPtr plan, const Catalog& catalog) const;
  Result<PlanPtr> ReorderJoins(PlanPtr plan, const Catalog& catalog) const;

  Options options_;
};

}  // namespace rdfspark::spark::sql

#endif  // RDFSPARK_SPARK_SQL_OPTIMIZER_H_
