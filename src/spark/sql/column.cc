#include "spark/sql/column.h"

namespace rdfspark::spark::sql {

void Column::Append(const Value& v) {
  ++num_values_;
  bool null = IsNull(v);
  nulls_.push_back(null ? 1 : 0);
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(null ? 0 : std::get<int64_t>(v));
      break;
    case DataType::kDouble:
      doubles_.push_back(null ? 0.0 : std::get<double>(v));
      break;
    case DataType::kBool:
      bools_.push_back(null ? 0 : (std::get<bool>(v) ? 1 : 0));
      break;
    case DataType::kString: {
      if (null) {
        codes_.push_back(-1);
        break;
      }
      const std::string& s = std::get<std::string>(v);
      auto it = dict_index_.find(s);
      int32_t code;
      if (it == dict_index_.end()) {
        code = static_cast<int32_t>(dict_.size());
        dict_.push_back(s);
        dict_index_.emplace(s, code);
      } else {
        code = it->second;
      }
      codes_.push_back(code);
      break;
    }
    case DataType::kNull:
      break;
  }
}

Value Column::Get(size_t i) const {
  if (nulls_[i]) return Value{};
  switch (type_) {
    case DataType::kInt64:
      return ints_[i];
    case DataType::kDouble:
      return doubles_[i];
    case DataType::kBool:
      return bools_[i] != 0;
    case DataType::kString:
      return dict_[static_cast<size_t>(codes_[i])];
    case DataType::kNull:
      return Value{};
  }
  return Value{};
}

uint64_t Column::MemoryBytes() const {
  uint64_t total = nulls_.size();
  total += ints_.size() * 8 + doubles_.size() * 8 + bools_.size();
  total += codes_.size() * 4;
  for (const auto& s : dict_) total += 16 + s.size();
  return total;
}

Row RecordBatch::GetRow(size_t i) const {
  Row row;
  row.reserve(columns.size());
  for (const Column& c : columns) row.push_back(c.Get(i));
  return row;
}

void RecordBatch::AppendRow(const Row& row) {
  for (size_t i = 0; i < columns.size(); ++i) columns[i].Append(row[i]);
  ++num_rows;
}

uint64_t RecordBatch::MemoryBytes() const {
  uint64_t total = 0;
  for (const Column& c : columns) total += c.MemoryBytes();
  return total;
}

RecordBatch MakeBatch(const Schema& schema) {
  RecordBatch batch;
  batch.columns.reserve(schema.num_fields());
  for (const Field& f : schema.fields()) {
    batch.columns.emplace_back(f.type);
  }
  return batch;
}

}  // namespace rdfspark::spark::sql
