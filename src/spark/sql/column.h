#ifndef RDFSPARK_SPARK_SQL_COLUMN_H_
#define RDFSPARK_SPARK_SQL_COLUMN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "spark/sql/value.h"

namespace rdfspark::spark::sql {

/// One column chunk: typed columnar storage with dictionary encoding for
/// strings. This is the mechanism behind the paper's §III/§IV.A.3 claim
/// that DataFrames' "columnar compressed in-memory representation" manages
/// up to 10x larger datasets than row RDDs: repeated strings are stored
/// once in the dictionary and referenced by 32-bit codes.
class Column {
 public:
  explicit Column(DataType type = DataType::kNull) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return num_values_; }

  /// Appends a value (must match the column type or be NULL).
  void Append(const Value& v);

  /// Reads a value back.
  Value Get(size_t i) const;

  /// Estimated resident bytes (dictionary counted once).
  uint64_t MemoryBytes() const;

 private:
  DataType type_;
  size_t num_values_ = 0;
  std::vector<uint8_t> nulls_;  // 1 = null

  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint8_t> bools_;

  // String storage: dictionary + codes.
  std::vector<int32_t> codes_;
  std::vector<std::string> dict_;
  std::unordered_map<std::string, int32_t> dict_index_;
};

/// A horizontal slice of a DataFrame: one column chunk per field. One batch
/// per partition.
struct RecordBatch {
  std::vector<Column> columns;
  size_t num_rows = 0;

  Row GetRow(size_t i) const;
  void AppendRow(const Row& row);
  uint64_t MemoryBytes() const;
};

/// Builds an empty batch matching `schema`.
RecordBatch MakeBatch(const Schema& schema);

}  // namespace rdfspark::spark::sql

#endif  // RDFSPARK_SPARK_SQL_COLUMN_H_
