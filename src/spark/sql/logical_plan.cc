#include "spark/sql/logical_plan.h"

#include <sstream>

namespace rdfspark::spark::sql {

PlanPtr MakeScan(std::string table, std::string alias) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = PlanKind::kScan;
  p->table = std::move(table);
  p->alias = std::move(alias);
  return p;
}

PlanPtr MakeProject(PlanPtr child,
                    std::vector<std::pair<Expr, std::string>> projections) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = PlanKind::kProject;
  p->left = std::move(child);
  p->projections = std::move(projections);
  return p;
}

PlanPtr MakeFilter(PlanPtr child, Expr predicate) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = PlanKind::kFilter;
  p->left = std::move(child);
  p->predicate = std::move(predicate);
  return p;
}

PlanPtr MakeJoin(PlanPtr left, PlanPtr right, Expr condition, JoinType type,
                 JoinStrategy strategy) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = PlanKind::kJoin;
  p->left = std::move(left);
  p->right = std::move(right);
  p->predicate = std::move(condition);
  p->join_type = type;
  p->join_strategy = strategy;
  return p;
}

PlanPtr MakeAggregate(PlanPtr child, std::vector<std::string> group_keys,
                      std::vector<AggSpec> aggs) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = PlanKind::kAggregate;
  p->left = std::move(child);
  p->group_keys = std::move(group_keys);
  p->aggs = std::move(aggs);
  return p;
}

PlanPtr MakeSort(PlanPtr child,
                 std::vector<std::pair<std::string, bool>> keys) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = PlanKind::kSort;
  p->left = std::move(child);
  p->sort_keys = std::move(keys);
  return p;
}

PlanPtr MakeLimit(PlanPtr child, int64_t limit) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = PlanKind::kLimit;
  p->left = std::move(child);
  p->limit = limit;
  return p;
}

PlanPtr MakeDistinct(PlanPtr child) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = PlanKind::kDistinct;
  p->left = std::move(child);
  return p;
}

PlanPtr ClonePlan(const PlanPtr& plan) {
  if (!plan) return nullptr;
  auto p = std::make_shared<LogicalPlan>(*plan);
  p->left = ClonePlan(plan->left);
  p->right = ClonePlan(plan->right);
  return p;
}

std::string LogicalPlan::ToString(int indent) const {
  std::ostringstream os;
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  os << pad;
  switch (kind) {
    case PlanKind::kScan:
      os << "Scan " << table;
      if (!alias.empty()) os << " AS " << alias;
      os << "\n";
      break;
    case PlanKind::kProject: {
      os << "Project [";
      for (size_t i = 0; i < projections.size(); ++i) {
        if (i) os << ", ";
        os << projections[i].first.ToString() << " AS "
           << projections[i].second;
      }
      os << "]\n";
      break;
    }
    case PlanKind::kFilter:
      os << "Filter " << predicate.ToString() << "\n";
      break;
    case PlanKind::kJoin:
      os << (join_type == JoinType::kInner ? "Join " : "LeftOuterJoin ")
         << (predicate.valid() ? predicate.ToString() : std::string("true"));
      switch (join_strategy) {
        case JoinStrategy::kBroadcast:
          os << " [broadcast]";
          break;
        case JoinStrategy::kShuffleHash:
          os << " [shuffle]";
          break;
        case JoinStrategy::kCartesian:
          os << " [cartesian]";
          break;
        case JoinStrategy::kAuto:
          break;
      }
      os << "\n";
      break;
    case PlanKind::kAggregate: {
      os << "Aggregate keys=[";
      for (size_t i = 0; i < group_keys.size(); ++i) {
        if (i) os << ", ";
        os << group_keys[i];
      }
      os << "] aggs=" << aggs.size() << "\n";
      break;
    }
    case PlanKind::kSort:
      os << "Sort\n";
      break;
    case PlanKind::kLimit:
      os << "Limit " << limit << "\n";
      break;
    case PlanKind::kDistinct:
      os << "Distinct\n";
      break;
  }
  if (left) os << left->ToString(indent + 1);
  if (right) os << right->ToString(indent + 1);
  return os.str();
}

}  // namespace rdfspark::spark::sql
