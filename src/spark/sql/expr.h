#ifndef RDFSPARK_SPARK_SQL_EXPR_H_
#define RDFSPARK_SPARK_SQL_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "spark/sql/value.h"

namespace rdfspark::spark::sql {

enum class ExprKind {
  kColumn,
  kLiteral,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
  kIsNull,
  kAdd,
  kSub,
  kMul,
};

/// Immutable expression tree node. Exprs are cheap handles (shared_ptr to
/// the node), so they compose with the operator DSL: Col("a") == Lit(5).
class Expr {
 public:
  Expr() = default;

  ExprKind kind() const { return node_->kind; }
  const std::string& column() const { return node_->column; }
  const Value& literal() const { return node_->literal; }
  const std::vector<Expr>& children() const { return node_->children; }
  bool valid() const { return node_ != nullptr; }

  /// Evaluates on one row. Comparison/boolean errors yield NULL (SQL
  /// three-valued logic collapses to "row fails the predicate").
  Value Eval(const Row& row, const Schema& schema) const;

  /// True iff the predicate evaluates to boolean true.
  bool EvalPredicate(const Row& row, const Schema& schema) const;

  /// Column names referenced anywhere in the tree.
  void CollectColumns(std::vector<std::string>* out) const;

  /// Whether all referenced columns exist in `schema`.
  bool ResolvedBy(const Schema& schema) const;

  std::string ToString() const;

  // Factories.
  static Expr Column(std::string name);
  static Expr Literal(Value v);
  static Expr Unary(ExprKind kind, Expr child);
  static Expr Binary(ExprKind kind, Expr lhs, Expr rhs);

 private:
  struct Node {
    ExprKind kind = ExprKind::kLiteral;
    std::string column;
    Value literal;
    std::vector<Expr> children;
  };

  std::shared_ptr<const Node> node_;
};

/// DSL shorthands.
Expr Col(std::string name);
Expr Lit(Value v);
inline Expr Lit(const char* s) { return Lit(Value(std::string(s))); }
inline Expr Lit(int v) { return Lit(Value(int64_t{v})); }

Expr operator==(Expr a, Expr b);
Expr operator!=(Expr a, Expr b);
Expr operator<(Expr a, Expr b);
Expr operator<=(Expr a, Expr b);
Expr operator>(Expr a, Expr b);
Expr operator>=(Expr a, Expr b);
Expr operator&&(Expr a, Expr b);
Expr operator||(Expr a, Expr b);
Expr operator!(Expr a);
Expr operator+(Expr a, Expr b);
Expr operator-(Expr a, Expr b);
Expr operator*(Expr a, Expr b);

/// Splits a conjunctive predicate into its AND-ed conjuncts.
void SplitConjuncts(const Expr& e, std::vector<Expr>* out);

/// Rebuilds a conjunction (empty -> invalid Expr; caller checks valid()).
Expr CombineConjuncts(const std::vector<Expr>& conjuncts);

}  // namespace rdfspark::spark::sql

#endif  // RDFSPARK_SPARK_SQL_EXPR_H_
