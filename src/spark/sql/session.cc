#include "spark/sql/session.h"

namespace rdfspark::spark::sql {

Result<DataFrame> SqlSession::Table(const std::string& name) const {
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("unknown table: " + name);
  }
  return it->second;
}

Result<DataFrame> SqlSession::Sql(std::string_view query) const {
  RDFSPARK_ASSIGN_OR_RETURN(PlanPtr plan, ParseSql(query));
  Optimizer optimizer(optimizer_options_);
  RDFSPARK_ASSIGN_OR_RETURN(PlanPtr optimized,
                            optimizer.Optimize(plan, catalog_));
  return Execute(optimized);
}

Result<std::string> SqlSession::Explain(std::string_view query) const {
  RDFSPARK_ASSIGN_OR_RETURN(PlanPtr plan, ParseSql(query));
  Optimizer optimizer(optimizer_options_);
  RDFSPARK_ASSIGN_OR_RETURN(PlanPtr optimized,
                            optimizer.Optimize(plan, catalog_));
  return optimized->ToString();
}

Result<DataFrame> SqlSession::Execute(const PlanPtr& plan) const {
  switch (plan->kind) {
    case PlanKind::kScan: {
      RDFSPARK_ASSIGN_OR_RETURN(DataFrame df, Table(plan->table));
      if (plan->alias.empty()) return df;
      std::vector<std::string> names;
      for (const Field& f : df.schema().fields()) {
        names.push_back(plan->alias + "." + f.name);
      }
      return df.Rename(names);
    }
    case PlanKind::kProject: {
      RDFSPARK_ASSIGN_OR_RETURN(DataFrame child, Execute(plan->left));
      return child.SelectExprs(plan->projections);
    }
    case PlanKind::kFilter: {
      RDFSPARK_ASSIGN_OR_RETURN(DataFrame child, Execute(plan->left));
      return child.Filter(plan->predicate);
    }
    case PlanKind::kJoin: {
      RDFSPARK_ASSIGN_OR_RETURN(DataFrame left, Execute(plan->left));
      RDFSPARK_ASSIGN_OR_RETURN(DataFrame right, Execute(plan->right));
      // Split the condition into equi-join keys (column = column across the
      // two sides) and a residual predicate.
      std::vector<std::pair<std::string, std::string>> keys;
      std::vector<Expr> residual;
      if (plan->predicate.valid()) {
        std::vector<Expr> conjuncts;
        SplitConjuncts(plan->predicate, &conjuncts);
        for (const Expr& c : conjuncts) {
          bool is_key = false;
          if (c.kind() == ExprKind::kEq &&
              c.children()[0].kind() == ExprKind::kColumn &&
              c.children()[1].kind() == ExprKind::kColumn) {
            const std::string& a = c.children()[0].column();
            const std::string& b = c.children()[1].column();
            if (left.schema().Index(a) >= 0 &&
                right.schema().Index(b) >= 0) {
              keys.emplace_back(a, b);
              is_key = true;
            } else if (left.schema().Index(b) >= 0 &&
                       right.schema().Index(a) >= 0) {
              keys.emplace_back(b, a);
              is_key = true;
            }
          }
          if (!is_key) residual.push_back(c);
        }
      }
      DataFrame joined;
      if (keys.empty()) {
        // No equi keys: Cartesian product (the naive fallback of [21]).
        joined = left.CrossJoin(right);
      } else {
        joined = left.Join(right, keys, plan->join_type,
                           plan->join_strategy);
      }
      if (!residual.empty()) {
        joined = joined.Filter(CombineConjuncts(residual));
      }
      return joined;
    }
    case PlanKind::kAggregate: {
      RDFSPARK_ASSIGN_OR_RETURN(DataFrame child, Execute(plan->left));
      return child.GroupByAgg(plan->group_keys, plan->aggs);
    }
    case PlanKind::kSort: {
      RDFSPARK_ASSIGN_OR_RETURN(DataFrame child, Execute(plan->left));
      return child.Sort(plan->sort_keys);
    }
    case PlanKind::kLimit: {
      RDFSPARK_ASSIGN_OR_RETURN(DataFrame child, Execute(plan->left));
      return child.Limit(plan->limit);
    }
    case PlanKind::kDistinct: {
      RDFSPARK_ASSIGN_OR_RETURN(DataFrame child, Execute(plan->left));
      return child.Distinct();
    }
  }
  return Status::Internal("unhandled plan kind");
}

}  // namespace rdfspark::spark::sql
