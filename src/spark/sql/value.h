#ifndef RDFSPARK_SPARK_SQL_VALUE_H_
#define RDFSPARK_SPARK_SQL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace rdfspark::spark::sql {

/// Column data types supported by the DataFrame layer.
enum class DataType : uint8_t { kNull, kInt64, kDouble, kString, kBool };

const char* DataTypeName(DataType t);

/// A dynamically-typed cell. monostate encodes SQL NULL.
using Value = std::variant<std::monostate, int64_t, double, std::string, bool>;

/// A row of cells, aligned with a Schema.
using Row = std::vector<Value>;

DataType TypeOf(const Value& v);
bool IsNull(const Value& v);

/// Rendering for examples/debugging ("NULL", quoted strings).
std::string ValueToString(const Value& v);

/// SQL comparison with numeric coercion between int64 and double. NULL
/// compares as incomparable: returns nullopt semantics via Status.
/// cmp < 0, == 0, > 0 like strcmp.
Result<int> CompareValues(const Value& a, const Value& b);

/// Equality used by joins and DISTINCT (NULL != NULL, like SQL).
bool ValuesEqual(const Value& a, const Value& b);

/// Deterministic hash for partitioning (NULL hashes to a fixed value).
uint64_t HashValue(const Value& v);

/// Estimated in-memory size for shuffle accounting.
uint64_t EstimateSize(const Value& v);
uint64_t EstimateSize(const Row& row);

/// Named, typed column.
struct Field {
  std::string name;
  DataType type = DataType::kNull;
  bool operator==(const Field&) const = default;
};

/// Ordered list of fields.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  /// Index of column `name`, or -1.
  int Index(const std::string& name) const;

  std::string ToString() const;

  bool operator==(const Schema&) const = default;

 private:
  std::vector<Field> fields_;
};

}  // namespace rdfspark::spark::sql

#endif  // RDFSPARK_SPARK_SQL_VALUE_H_
