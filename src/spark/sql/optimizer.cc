#include "spark/sql/optimizer.h"

#include <algorithm>

namespace rdfspark::spark::sql {

Result<Schema> Optimizer::InferSchema(const PlanPtr& plan,
                                      const Catalog& catalog) {
  switch (plan->kind) {
    case PlanKind::kScan: {
      auto it = catalog.find(plan->table);
      if (it == catalog.end()) {
        return Status::NotFound("unknown table: " + plan->table);
      }
      Schema schema = it->second.schema();
      if (plan->alias.empty()) return schema;
      std::vector<Field> fields;
      for (const Field& f : schema.fields()) {
        fields.push_back(Field{plan->alias + "." + f.name, f.type});
      }
      return Schema{fields};
    }
    case PlanKind::kProject: {
      RDFSPARK_ASSIGN_OR_RETURN(Schema child,
                                InferSchema(plan->left, catalog));
      std::vector<Field> fields;
      for (const auto& [expr, name] : plan->projections) {
        DataType t = DataType::kString;
        if (expr.kind() == ExprKind::kColumn) {
          int idx = child.Index(expr.column());
          if (idx >= 0) t = child.field(static_cast<size_t>(idx)).type;
        } else if (expr.kind() == ExprKind::kLiteral) {
          t = TypeOf(expr.literal());
        }
        fields.push_back(Field{name, t});
      }
      return Schema{fields};
    }
    case PlanKind::kJoin: {
      RDFSPARK_ASSIGN_OR_RETURN(Schema left, InferSchema(plan->left, catalog));
      RDFSPARK_ASSIGN_OR_RETURN(Schema right,
                                InferSchema(plan->right, catalog));
      std::vector<Field> fields = left.fields();
      for (const Field& f : right.fields()) fields.push_back(f);
      return Schema{fields};
    }
    case PlanKind::kAggregate: {
      RDFSPARK_ASSIGN_OR_RETURN(Schema child,
                                InferSchema(plan->left, catalog));
      std::vector<Field> fields;
      for (const auto& k : plan->group_keys) {
        int idx = child.Index(k);
        fields.push_back(Field{
            k, idx >= 0 ? child.field(static_cast<size_t>(idx)).type
                        : DataType::kString});
      }
      for (const auto& a : plan->aggs) {
        DataType t = a.op == AggOp::kAvg ? DataType::kDouble
                                         : DataType::kInt64;
        if (a.op == AggOp::kMin || a.op == AggOp::kMax ||
            a.op == AggOp::kSum) {
          int idx = child.Index(a.column);
          if (idx >= 0) t = child.field(static_cast<size_t>(idx)).type;
        }
        fields.push_back(Field{a.alias, t});
      }
      return Schema{fields};
    }
    case PlanKind::kFilter:
    case PlanKind::kSort:
    case PlanKind::kLimit:
    case PlanKind::kDistinct:
      return InferSchema(plan->left, catalog);
  }
  return Status::Internal("unhandled plan kind");
}

uint64_t Optimizer::EstimateRows(const PlanPtr& plan, const Catalog& catalog) {
  switch (plan->kind) {
    case PlanKind::kScan: {
      auto it = catalog.find(plan->table);
      return it == catalog.end() ? 0 : it->second.NumRows();
    }
    case PlanKind::kFilter: {
      std::vector<Expr> conjuncts;
      SplitConjuncts(plan->predicate, &conjuncts);
      uint64_t rows = EstimateRows(plan->left, catalog);
      for (size_t i = 0; i < conjuncts.size(); ++i) rows /= 4;
      return std::max<uint64_t>(rows, 1);
    }
    case PlanKind::kJoin:
      return EstimateRows(plan->left, catalog) +
             EstimateRows(plan->right, catalog);
    case PlanKind::kLimit:
      return std::min<uint64_t>(
          EstimateRows(plan->left, catalog),
          plan->limit < 0 ? ~0ull : static_cast<uint64_t>(plan->limit));
    default:
      return plan->left ? EstimateRows(plan->left, catalog) : 0;
  }
}

Result<PlanPtr> Optimizer::Optimize(const PlanPtr& plan,
                                    const Catalog& catalog) const {
  PlanPtr out = ClonePlan(plan);
  if (options_.push_filters) {
    RDFSPARK_ASSIGN_OR_RETURN(out, PushFilters(out, catalog));
  }
  if (options_.reorder_joins) {
    RDFSPARK_ASSIGN_OR_RETURN(out, ReorderJoins(out, catalog));
  }
  return out;
}

Result<PlanPtr> Optimizer::PushFilters(PlanPtr plan,
                                       const Catalog& catalog) const {
  if (!plan) return plan;
  if (plan->left) {
    RDFSPARK_ASSIGN_OR_RETURN(plan->left, PushFilters(plan->left, catalog));
  }
  if (plan->right) {
    RDFSPARK_ASSIGN_OR_RETURN(plan->right, PushFilters(plan->right, catalog));
  }
  if (plan->kind != PlanKind::kFilter) return plan;

  // Merge stacked filters.
  while (plan->left && plan->left->kind == PlanKind::kFilter) {
    plan->predicate = plan->predicate && plan->left->predicate;
    plan->left = plan->left->left;
  }
  if (!plan->left || plan->left->kind != PlanKind::kJoin) return plan;

  PlanPtr join = plan->left;
  RDFSPARK_ASSIGN_OR_RETURN(Schema lschema,
                            InferSchema(join->left, catalog));
  RDFSPARK_ASSIGN_OR_RETURN(Schema rschema,
                            InferSchema(join->right, catalog));
  std::vector<Expr> conjuncts;
  SplitConjuncts(plan->predicate, &conjuncts);
  std::vector<Expr> to_left, to_right, stay;
  for (const Expr& c : conjuncts) {
    if (c.ResolvedBy(lschema)) {
      to_left.push_back(c);
    } else if (c.ResolvedBy(rschema) &&
               join->join_type == JoinType::kInner) {
      // Pushing below the null-producing side of an outer join is unsound;
      // only inner joins accept right-side pushdown.
      to_right.push_back(c);
    } else {
      stay.push_back(c);
    }
  }
  if (!to_left.empty()) {
    join->left = MakeFilter(join->left, CombineConjuncts(to_left));
    RDFSPARK_ASSIGN_OR_RETURN(join->left, PushFilters(join->left, catalog));
  }
  if (!to_right.empty()) {
    join->right = MakeFilter(join->right, CombineConjuncts(to_right));
    RDFSPARK_ASSIGN_OR_RETURN(join->right,
                              PushFilters(join->right, catalog));
  }
  if (stay.empty()) return join;
  return MakeFilter(join, CombineConjuncts(stay));
}

namespace {

/// Collects the leaves and conditions of a maximal chain of inner kAuto
/// joins rooted at `plan`.
void CollectJoinChain(const PlanPtr& plan, std::vector<PlanPtr>* leaves,
                      std::vector<Expr>* conditions) {
  if (plan->kind == PlanKind::kJoin && plan->join_type == JoinType::kInner &&
      plan->join_strategy == JoinStrategy::kAuto) {
    CollectJoinChain(plan->left, leaves, conditions);
    CollectJoinChain(plan->right, leaves, conditions);
    if (plan->predicate.valid()) {
      SplitConjuncts(plan->predicate, conditions);
    }
    return;
  }
  leaves->push_back(plan);
}

}  // namespace

Result<PlanPtr> Optimizer::ReorderJoins(PlanPtr plan,
                                        const Catalog& catalog) const {
  if (!plan) return plan;
  if (plan->kind != PlanKind::kJoin ||
      plan->join_type != JoinType::kInner ||
      plan->join_strategy != JoinStrategy::kAuto) {
    if (plan->left) {
      RDFSPARK_ASSIGN_OR_RETURN(plan->left, ReorderJoins(plan->left, catalog));
    }
    if (plan->right) {
      RDFSPARK_ASSIGN_OR_RETURN(plan->right,
                                ReorderJoins(plan->right, catalog));
    }
    return plan;
  }

  std::vector<PlanPtr> leaves;
  std::vector<Expr> conditions;
  CollectJoinChain(plan, &leaves, &conditions);
  if (leaves.size() <= 2) return plan;

  // Recursively optimize leaves and size them.
  std::vector<Schema> schemas;
  std::vector<uint64_t> sizes;
  for (auto& leaf : leaves) {
    RDFSPARK_ASSIGN_OR_RETURN(leaf, ReorderJoins(leaf, catalog));
    RDFSPARK_ASSIGN_OR_RETURN(Schema s, InferSchema(leaf, catalog));
    schemas.push_back(std::move(s));
    sizes.push_back(EstimateRows(leaf, catalog));
  }

  auto resolved_by_union = [](const Expr& e, const Schema& a,
                              const Schema& b) {
    std::vector<std::string> cols;
    e.CollectColumns(&cols);
    for (const auto& c : cols) {
      if (a.Index(c) < 0 && b.Index(c) < 0) return false;
    }
    return true;
  };
  auto touches = [](const Expr& e, const Schema& s) {
    std::vector<std::string> cols;
    e.CollectColumns(&cols);
    for (const auto& c : cols) {
      if (s.Index(c) >= 0) return true;
    }
    return false;
  };

  // Greedy: start from the smallest leaf, repeatedly add the smallest leaf
  // connected to the current set by an unused condition.
  std::vector<bool> used(leaves.size(), false);
  std::vector<bool> cond_used(conditions.size(), false);
  size_t first = 0;
  for (size_t i = 1; i < leaves.size(); ++i) {
    if (sizes[i] < sizes[first]) first = i;
  }
  used[first] = true;
  PlanPtr current = leaves[first];
  std::vector<Field> current_fields = schemas[first].fields();

  for (size_t step = 1; step < leaves.size(); ++step) {
    Schema current_schema{current_fields};
    int best = -1;
    bool best_connected = false;
    for (size_t i = 0; i < leaves.size(); ++i) {
      if (used[i]) continue;
      bool connected = false;
      for (size_t c = 0; c < conditions.size(); ++c) {
        if (cond_used[c]) continue;
        if (touches(conditions[c], current_schema) &&
            touches(conditions[c], schemas[i]) &&
            resolved_by_union(conditions[c], current_schema, schemas[i])) {
          connected = true;
          break;
        }
      }
      if (best < 0 || (connected && !best_connected) ||
          (connected == best_connected &&
           sizes[i] < sizes[static_cast<size_t>(best)])) {
        best = static_cast<int>(i);
        best_connected = connected;
      }
    }
    size_t b = static_cast<size_t>(best);
    used[b] = true;
    // Attach every not-yet-used condition now fully resolvable.
    std::vector<Expr> attach;
    for (size_t c = 0; c < conditions.size(); ++c) {
      if (cond_used[c]) continue;
      if (resolved_by_union(conditions[c], current_schema, schemas[b]) &&
          touches(conditions[c], schemas[b])) {
        attach.push_back(conditions[c]);
        cond_used[c] = true;
      }
    }
    current = MakeJoin(current, leaves[b], CombineConjuncts(attach),
                       JoinType::kInner, JoinStrategy::kAuto);
    for (const Field& f : schemas[b].fields()) current_fields.push_back(f);
  }

  // Leftover conditions become a final filter.
  std::vector<Expr> rest;
  for (size_t c = 0; c < conditions.size(); ++c) {
    if (!cond_used[c]) rest.push_back(conditions[c]);
  }
  if (!rest.empty()) current = MakeFilter(current, CombineConjuncts(rest));
  return current;
}

}  // namespace rdfspark::spark::sql
