#include "spark/sql/dataframe.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"

namespace rdfspark::spark::sql {

namespace {

/// Deterministic hash/equality for rows used as keys (join keys, group
/// keys, DISTINCT). NULLs compare equal here, matching SQL GROUP BY
/// semantics; join code filters NULL keys out beforehand.
struct RowHasher {
  size_t operator()(const Row& row) const {
    uint64_t h = 0x2545f4914f6cdd1dULL;
    for (const Value& v : row) h = CombineHash64(h, HashValue(v));
    return static_cast<size_t>(h);
  }
};

/// Join-key equality with numeric coercion (2 == 2.0), matching the
/// coercion HashValue applies. NULL keys are filtered out before build, so
/// ValuesEqual's NULL-never-equal is safe here.
struct RowKeyEqual {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!ValuesEqual(a[i], b[i])) return false;
    }
    return true;
  }
};

std::string DfPartitionKind(const std::vector<std::string>& columns) {
  std::string kind = "df-hash";
  for (const auto& c : columns) {
    kind += ":";
    kind += c;
  }
  return kind;
}

uint64_t HashRowKey(const Row& key) {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (const Value& v : key) h = CombineHash64(h, HashValue(v));
  return h;
}

bool RowHasNullKey(const Row& key) {
  for (const Value& v : key) {
    if (IsNull(v)) return true;
  }
  return false;
}

}  // namespace

DataFrame DataFrame::Make(SparkContext* sc, Schema schema,
                          std::vector<RecordBatch> batches,
                          std::optional<PartitionerInfo> partitioner) {
  auto state = std::make_shared<State>();
  state->sc = sc;
  state->schema = std::move(schema);
  state->batches = std::move(batches);
  state->partitioner = std::move(partitioner);
  DataFrame df;
  df.state_ = std::move(state);
  return df;
}

DataFrame DataFrame::FromRows(SparkContext* sc, Schema schema,
                              const std::vector<Row>& rows,
                              int num_partitions) {
  int n = num_partitions > 0 ? num_partitions
                             : sc->config().default_parallelism;
  std::vector<RecordBatch> batches;
  batches.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) batches.push_back(MakeBatch(schema));
  size_t total = rows.size();
  for (int p = 0; p < n; ++p) {
    size_t begin = total * static_cast<size_t>(p) / static_cast<size_t>(n);
    size_t end =
        total * (static_cast<size_t>(p) + 1) / static_cast<size_t>(n);
    for (size_t i = begin; i < end; ++i) {
      batches[static_cast<size_t>(p)].AppendRow(rows[i]);
    }
  }
  return Make(sc, std::move(schema), std::move(batches), std::nullopt);
}

uint64_t DataFrame::NumRows() const {
  uint64_t n = 0;
  for (const auto& b : state_->batches) n += b.num_rows;
  return n;
}

uint64_t DataFrame::EstimatedBytes() const {
  uint64_t n = 0;
  for (const auto& b : state_->batches) n += b.MemoryBytes();
  return n;
}

uint64_t DataFrame::MemoryFootprint() const { return EstimatedBytes(); }

DataFrame DataFrame::Select(const std::vector<std::string>& columns) const {
  std::vector<std::pair<Expr, std::string>> projections;
  projections.reserve(columns.size());
  for (const auto& c : columns) projections.emplace_back(Col(c), c);
  return SelectExprs(projections);
}

DataFrame DataFrame::SelectExprs(
    const std::vector<std::pair<Expr, std::string>>& projections) const {
  SparkContext* sc = state_->sc;
  // Output schema: infer types (column refs keep their type; literals and
  // arithmetic probed on first row).
  std::vector<Field> fields;
  for (const auto& [expr, name] : projections) {
    DataType type = DataType::kString;
    if (expr.kind() == ExprKind::kColumn) {
      int idx = state_->schema.Index(expr.column());
      if (idx >= 0) type = state_->schema.field(static_cast<size_t>(idx)).type;
    } else if (expr.kind() == ExprKind::kLiteral) {
      type = TypeOf(expr.literal());
    } else {
      // Probe with the first available row.
      for (const auto& b : state_->batches) {
        if (b.num_rows > 0) {
          type = TypeOf(expr.Eval(b.GetRow(0), state_->schema));
          break;
        }
      }
    }
    fields.push_back(Field{name, type});
  }
  Schema out_schema{fields};

  sc->BeginPhase();
  // Partition tasks run concurrently; each writes its own pre-sized slot.
  std::vector<RecordBatch> batches(state_->batches.size(),
                                   MakeBatch(out_schema));
  sc->RunParallel(static_cast<int>(state_->batches.size()), [&](int p) {
    const RecordBatch& in = state_->batches[static_cast<size_t>(p)];
    RecordBatch out = MakeBatch(out_schema);
    for (size_t i = 0; i < in.num_rows; ++i) {
      Row row = in.GetRow(i);
      Row projected;
      projected.reserve(projections.size());
      for (const auto& [expr, name] : projections) {
        projected.push_back(expr.Eval(row, state_->schema));
      }
      out.AppendRow(projected);
    }
    sc->ChargeTask(p, in.num_rows, 0);
    batches[static_cast<size_t>(p)] = std::move(out);
  });
  sc->EndPhase();
  // Projection preserves partition placement but may drop partition keys;
  // conservatively keep the partitioner only for pure renames of all its
  // columns — simplest correct choice is to drop it.
  return Make(sc, std::move(out_schema), std::move(batches), std::nullopt);
}

DataFrame DataFrame::Rename(const std::vector<std::string>& names) const {
  std::vector<Field> fields = state_->schema.fields();
  for (size_t i = 0; i < fields.size() && i < names.size(); ++i) {
    fields[i].name = names[i];
  }
  auto state = std::make_shared<State>(*state_);
  state->schema = Schema{fields};
  DataFrame df;
  df.state_ = std::move(state);
  return df;
}

DataFrame DataFrame::Filter(const Expr& predicate) const {
  SparkContext* sc = state_->sc;
  sc->BeginPhase();
  std::vector<RecordBatch> batches(state_->batches.size(),
                                   MakeBatch(state_->schema));
  sc->RunParallel(static_cast<int>(state_->batches.size()), [&](int p) {
    const RecordBatch& in = state_->batches[static_cast<size_t>(p)];
    RecordBatch out = MakeBatch(state_->schema);
    for (size_t i = 0; i < in.num_rows; ++i) {
      Row row = in.GetRow(i);
      if (predicate.EvalPredicate(row, state_->schema)) out.AppendRow(row);
    }
    sc->ChargeTask(p, in.num_rows, 0);
    batches[static_cast<size_t>(p)] = std::move(out);
  });
  sc->EndPhase();
  return Make(sc, state_->schema, std::move(batches), state_->partitioner);
}

template <typename KeyFn>
std::vector<RecordBatch> DataFrame::ShuffleRows(const Schema& out_schema,
                                                int num_partitions,
                                                KeyFn key_of) const {
  SparkContext* sc = state_->sc;
  sc->BeginPhase();
  size_t np = state_->batches.size();
  // Map side runs concurrently: each source partition stages its rows per
  // target in its own slot; the merge below walks sources in partition
  // order, so bucket row order matches the serial path exactly.
  std::vector<std::vector<std::vector<Row>>> staged(np);
  std::vector<std::vector<uint64_t>> staged_remote(np);
  sc->RunParallel(static_cast<int>(np), [&](int p) {
    const RecordBatch& in = state_->batches[static_cast<size_t>(p)];
    sc->ChargeTask(p, in.num_rows, 0);
    int src_exec = sc->ExecutorOf(p);
    auto& rows = staged[static_cast<size_t>(p)];
    rows.resize(static_cast<size_t>(num_partitions));
    auto& remote = staged_remote[static_cast<size_t>(p)];
    remote.assign(static_cast<size_t>(num_partitions), 0);
    uint64_t shuffle_records = 0, shuffle_bytes = 0;
    uint64_t remote_shuffle_bytes = 0, remote_reads = 0, local_reads = 0;
    for (size_t i = 0; i < in.num_rows; ++i) {
      Row row = in.GetRow(i);
      int target = static_cast<int>(key_of(row) %
                                    static_cast<uint64_t>(num_partitions));
      uint64_t bytes = EstimateSize(row);
      ++shuffle_records;
      shuffle_bytes += bytes;
      if (sc->ExecutorOf(target) != src_exec) {
        remote_shuffle_bytes += bytes;
        ++remote_reads;
        remote[static_cast<size_t>(target)] += bytes;
      } else {
        ++local_reads;
      }
      rows[static_cast<size_t>(target)].push_back(std::move(row));
    }
    sc->ChargeShuffleWrite(p, shuffle_records, shuffle_bytes,
                           remote_shuffle_bytes, local_reads, remote_reads);
  });
  std::vector<RecordBatch> buckets;
  buckets.reserve(static_cast<size_t>(num_partitions));
  for (int i = 0; i < num_partitions; ++i) {
    buckets.push_back(MakeBatch(out_schema));
  }
  std::vector<uint64_t> remote_bytes(static_cast<size_t>(num_partitions), 0);
  for (size_t p = 0; p < np; ++p) {
    for (int t = 0; t < num_partitions; ++t) {
      for (const Row& row : staged[p][static_cast<size_t>(t)]) {
        buckets[static_cast<size_t>(t)].AppendRow(row);
      }
      remote_bytes[static_cast<size_t>(t)] +=
          staged_remote[p][static_cast<size_t>(t)];
    }
  }
  for (int t = 0; t < num_partitions; ++t) {
    sc->ChargeTask(t, buckets[static_cast<size_t>(t)].num_rows,
                   remote_bytes[static_cast<size_t>(t)]);
  }
  sc->EndPhase();
  return buckets;
}

DataFrame DataFrame::AssumePartitionedBy(
    const std::vector<std::string>& columns) const {
  auto state = std::make_shared<State>(*state_);
  state->partitioner = PartitionerInfo{
      DfPartitionKind(columns), static_cast<int>(state->batches.size()), 0};
  DataFrame df;
  df.state_ = std::move(state);
  return df;
}

DataFrame DataFrame::PartitionBy(const std::vector<std::string>& columns,
                                 int num_partitions) const {
  SparkContext* sc = state_->sc;
  int n = num_partitions > 0 ? num_partitions
                             : static_cast<int>(state_->batches.size());
  PartitionerInfo info{DfPartitionKind(columns), n, 0};
  if (state_->partitioner && *state_->partitioner == info) return *this;
  std::vector<int> key_cols;
  for (const auto& c : columns) key_cols.push_back(state_->schema.Index(c));
  auto batches = ShuffleRows(state_->schema, n, [&](const Row& row) {
    Row key;
    for (int c : key_cols) key.push_back(row[static_cast<size_t>(c)]);
    return HashRowKey(key);
  });
  return Make(sc, state_->schema, std::move(batches), info);
}

DataFrame DataFrame::Join(
    const DataFrame& right,
    const std::vector<std::pair<std::string, std::string>>& keys,
    JoinType type, JoinStrategy strategy) const {
  SparkContext* sc = state_->sc;
  if (strategy == JoinStrategy::kCartesian) {
    // Cartesian + filter (the naive translation).
    DataFrame cross = CrossJoin(right);
    Expr predicate;
    for (const auto& [l, r] : keys) {
      Expr eq = Col(l) == Col(r);
      predicate = predicate.valid() ? (predicate && eq) : eq;
    }
    return predicate.valid() ? cross.Filter(predicate) : cross;
  }
  if (strategy == JoinStrategy::kBroadcast) {
    return BroadcastJoin(right, keys, type);
  }
  if (strategy == JoinStrategy::kAuto) {
    // Spark's rule: broadcast the small side when under the threshold.
    // Left-outer joins can only broadcast the right side.
    uint64_t threshold = sc->config().broadcast_threshold_bytes;
    if (right.EstimatedBytes() <= threshold) {
      return BroadcastJoin(right, keys, type);
    }
    if (type == JoinType::kInner && EstimatedBytes() <= threshold) {
      // Swap sides: broadcast left, preserve output column order after.
      std::vector<std::pair<std::string, std::string>> swapped;
      for (const auto& [l, r] : keys) swapped.emplace_back(r, l);
      DataFrame joined = right.BroadcastJoin(*this, swapped, type);
      // Reorder columns to left-then-right convention.
      std::vector<std::string> order;
      for (const auto& f : state_->schema.fields()) order.push_back(f.name);
      for (const auto& f : joined.schema().fields()) {
        if (std::find(order.begin(), order.end(), f.name) == order.end()) {
          order.push_back(f.name);
        }
      }
      return joined.Select(order);
    }
  }
  return ShuffleHashJoin(right, keys, type);
}

DataFrame DataFrame::BroadcastJoin(
    const DataFrame& right,
    const std::vector<std::pair<std::string, std::string>>& keys,
    JoinType type) const {
  SparkContext* sc = state_->sc;
  // Replicate the right side to every executor.
  sc->ChargeBroadcastBytes(right.EstimatedBytes());

  std::vector<int> lcols, rcols;
  for (const auto& [l, r] : keys) {
    lcols.push_back(state_->schema.Index(l));
    rcols.push_back(right.schema().Index(r));
  }
  // Output schema: all left columns then all right columns (callers keep
  // names unique by qualification, as SQL aliases do).
  std::vector<Field> fields = state_->schema.fields();
  std::vector<int> right_keep;
  for (size_t i = 0; i < right.schema().num_fields(); ++i) {
    right_keep.push_back(static_cast<int>(i));
    fields.push_back(right.schema().field(i));
  }
  Schema out_schema{fields};

  // Build once (driver side).
  std::unordered_map<Row, std::vector<Row>, RowHasher, RowKeyEqual> build;
  for (const auto& b : right.state_->batches) {
    for (size_t i = 0; i < b.num_rows; ++i) {
      Row row = b.GetRow(i);
      Row key;
      for (int c : rcols) key.push_back(row[static_cast<size_t>(c)]);
      if (RowHasNullKey(key)) continue;
      build[std::move(key)].push_back(std::move(row));
    }
  }

  sc->BeginPhase();
  // The build table is read-only from here on; probe tasks share it and
  // each writes its own output slot.
  std::vector<RecordBatch> batches(state_->batches.size(),
                                   MakeBatch(out_schema));
  sc->RunParallel(static_cast<int>(state_->batches.size()), [&](int p) {
    const RecordBatch& in = state_->batches[static_cast<size_t>(p)];
    RecordBatch out = MakeBatch(out_schema);
    uint64_t comparisons = 0;
    for (size_t i = 0; i < in.num_rows; ++i) {
      Row row = in.GetRow(i);
      Row key;
      for (int c : lcols) key.push_back(row[static_cast<size_t>(c)]);
      ++comparisons;
      auto it = RowHasNullKey(key) ? build.end() : build.find(key);
      if (it != build.end()) {
        comparisons += it->second.size() - 1;
        for (const Row& rrow : it->second) {
          Row combined = row;
          for (int c : right_keep) {
            combined.push_back(rrow[static_cast<size_t>(c)]);
          }
          out.AppendRow(combined);
        }
      } else if (type == JoinType::kLeftOuter) {
        Row combined = row;
        combined.resize(out_schema.num_fields());
        out.AppendRow(combined);
      }
    }
    sc->ChargeJoinComparisons(comparisons);
    sc->ChargeTask(p, in.num_rows, 0);
    batches[static_cast<size_t>(p)] = std::move(out);
  });
  sc->EndPhase();
  return Make(sc, std::move(out_schema), std::move(batches),
              state_->partitioner);
}

DataFrame DataFrame::ShuffleHashJoin(
    const DataFrame& right,
    const std::vector<std::pair<std::string, std::string>>& keys,
    JoinType type) const {
  SparkContext* sc = state_->sc;
  std::vector<std::string> lnames, rnames;
  for (const auto& [l, r] : keys) {
    lnames.push_back(l);
    rnames.push_back(r);
  }
  int n = std::max(num_partitions(), right.num_partitions());

  // Co-partitioned fast path.
  PartitionerInfo linfo{DfPartitionKind(lnames), num_partitions(), 0};
  PartitionerInfo rinfo{DfPartitionKind(rnames), right.num_partitions(), 0};
  bool copartitioned = state_->partitioner && right.partitioner() &&
                       *state_->partitioner == linfo &&
                       *right.partitioner() == rinfo &&
                       num_partitions() == right.num_partitions();
  DataFrame left_part = copartitioned ? *this : PartitionBy(lnames, n);
  DataFrame right_part =
      copartitioned ? right : right.PartitionBy(rnames, n);

  std::vector<int> lcols, rcols;
  for (const auto& [l, r] : keys) {
    lcols.push_back(left_part.schema().Index(l));
    rcols.push_back(right_part.schema().Index(r));
  }
  std::vector<Field> fields = left_part.schema().fields();
  std::vector<int> right_keep;
  for (size_t i = 0; i < right_part.schema().num_fields(); ++i) {
    right_keep.push_back(static_cast<int>(i));
    fields.push_back(right_part.schema().field(i));
  }
  Schema out_schema{fields};

  sc->BeginPhase();
  // Each task builds and probes its own partition pair — no shared state
  // beyond the (atomic) metric counters.
  std::vector<RecordBatch> batches(
      static_cast<size_t>(left_part.num_partitions()), MakeBatch(out_schema));
  sc->RunParallel(left_part.num_partitions(), [&](int p) {
    const RecordBatch& lb =
        left_part.state_->batches[static_cast<size_t>(p)];
    const RecordBatch& rb =
        right_part.state_->batches[static_cast<size_t>(p)];
    std::unordered_map<Row, std::vector<Row>, RowHasher, RowKeyEqual> build;
    for (size_t i = 0; i < rb.num_rows; ++i) {
      Row row = rb.GetRow(i);
      Row key;
      for (int c : rcols) key.push_back(row[static_cast<size_t>(c)]);
      if (RowHasNullKey(key)) continue;
      build[std::move(key)].push_back(std::move(row));
    }
    RecordBatch out = MakeBatch(out_schema);
    uint64_t comparisons = 0;
    for (size_t i = 0; i < lb.num_rows; ++i) {
      Row row = lb.GetRow(i);
      Row key;
      for (int c : lcols) key.push_back(row[static_cast<size_t>(c)]);
      ++comparisons;
      auto it = RowHasNullKey(key) ? build.end() : build.find(key);
      if (it != build.end()) {
        comparisons += it->second.size() - 1;
        for (const Row& rrow : it->second) {
          Row combined = row;
          for (int c : right_keep) {
            combined.push_back(rrow[static_cast<size_t>(c)]);
          }
          out.AppendRow(combined);
        }
      } else if (type == JoinType::kLeftOuter) {
        Row combined = row;
        combined.resize(out_schema.num_fields());
        out.AppendRow(combined);
      }
    }
    sc->ChargeJoinComparisons(comparisons);
    sc->ChargeTask(p, lb.num_rows + rb.num_rows, 0);
    batches[static_cast<size_t>(p)] = std::move(out);
  });
  sc->EndPhase();
  return Make(sc, std::move(out_schema), std::move(batches),
              PartitionerInfo{DfPartitionKind(lnames),
                              left_part.num_partitions(), 0});
}

DataFrame DataFrame::CrossJoin(const DataFrame& right) const {
  SparkContext* sc = state_->sc;
  std::vector<Field> fields = state_->schema.fields();
  for (const auto& f : right.schema().fields()) fields.push_back(f);
  Schema out_schema{fields};

  sc->BeginPhase();
  // Output partition o pairs left partition o / rn with right partition
  // o % rn — the same enumeration order as the serial nested loops.
  int rn = static_cast<int>(right.state_->batches.size());
  int total = static_cast<int>(state_->batches.size()) * rn;
  std::vector<RecordBatch> batches(static_cast<size_t>(total),
                                   MakeBatch(out_schema));
  sc->RunParallel(total, [&](int out_p) {
    int lp = out_p / rn;
    int rp = out_p % rn;
    const RecordBatch& lb = state_->batches[static_cast<size_t>(lp)];
    const RecordBatch& rb = right.state_->batches[static_cast<size_t>(rp)];
    RecordBatch out = MakeBatch(out_schema);
    sc->ChargeJoinComparisons(lb.num_rows * rb.num_rows);
    uint64_t remote = 0;
    if (sc->ExecutorOf(out_p) != sc->ExecutorOf(rp)) {
      remote = rb.MemoryBytes();
      sc->ChargeRemoteReads(rb.num_rows);
    }
    for (size_t i = 0; i < lb.num_rows; ++i) {
      Row lrow = lb.GetRow(i);
      for (size_t j = 0; j < rb.num_rows; ++j) {
        Row combined = lrow;
        Row rrow = rb.GetRow(j);
        combined.insert(combined.end(), rrow.begin(), rrow.end());
        out.AppendRow(combined);
      }
    }
    sc->ChargeTask(out_p, lb.num_rows * rb.num_rows, remote);
    batches[static_cast<size_t>(out_p)] = std::move(out);
  });
  sc->EndPhase();
  return Make(sc, std::move(out_schema), std::move(batches), std::nullopt);
}

DataFrame DataFrame::Union(const DataFrame& other) const {
  std::vector<RecordBatch> batches = state_->batches;
  for (const auto& b : other.state_->batches) batches.push_back(b);
  return Make(state_->sc, state_->schema, std::move(batches), std::nullopt);
}

DataFrame DataFrame::Distinct() const {
  SparkContext* sc = state_->sc;
  int n = num_partitions();
  auto buckets =
      ShuffleRows(state_->schema, n, [](const Row& row) {
        return HashRowKey(row);
      });
  sc->BeginPhase();
  std::vector<RecordBatch> batches(static_cast<size_t>(n),
                                   MakeBatch(state_->schema));
  sc->RunParallel(n, [&](int p) {
    const RecordBatch& in = buckets[static_cast<size_t>(p)];
    RecordBatch out = MakeBatch(state_->schema);
    std::unordered_set<Row, RowHasher> seen;
    for (size_t i = 0; i < in.num_rows; ++i) {
      Row row = in.GetRow(i);
      if (seen.insert(row).second) out.AppendRow(row);
    }
    sc->ChargeTask(p, in.num_rows, 0);
    batches[static_cast<size_t>(p)] = std::move(out);
  });
  sc->EndPhase();
  return Make(sc, state_->schema, std::move(batches), std::nullopt);
}

DataFrame DataFrame::Sort(
    const std::vector<std::pair<std::string, bool>>& keys) const {
  SparkContext* sc = state_->sc;
  // Global sort: gather (charged as an all-to-one shuffle), sort, split.
  std::vector<Row> rows;
  sc->BeginPhase();
  for (size_t p = 0; p < state_->batches.size(); ++p) {
    const RecordBatch& in = state_->batches[p];
    uint64_t bytes = in.MemoryBytes();
    sc->ChargeShuffleWrite(static_cast<int>(p), in.num_rows, bytes, bytes,
                           0, 0);
    sc->ChargeTask(static_cast<int>(p), in.num_rows, bytes);
    for (size_t i = 0; i < in.num_rows; ++i) rows.push_back(in.GetRow(i));
  }
  sc->EndPhase();

  std::vector<std::pair<int, bool>> cols;
  for (const auto& [name, asc] : keys) {
    cols.emplace_back(state_->schema.Index(name), asc);
  }
  std::stable_sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
    for (const auto& [c, asc] : cols) {
      if (c < 0) continue;
      const Value& va = a[static_cast<size_t>(c)];
      const Value& vb = b[static_cast<size_t>(c)];
      if (IsNull(va) && IsNull(vb)) continue;
      if (IsNull(va)) return asc;  // NULLs first ascending
      if (IsNull(vb)) return !asc;
      auto cmp = CompareValues(va, vb);
      if (!cmp.ok() || *cmp == 0) continue;
      return asc ? *cmp < 0 : *cmp > 0;
    }
    return false;
  });
  DataFrame out =
      FromRows(sc, state_->schema, rows, num_partitions());
  return out;
}

DataFrame DataFrame::Limit(int64_t n) const {
  std::vector<Row> rows;
  for (const auto& b : state_->batches) {
    for (size_t i = 0; i < b.num_rows; ++i) {
      if (static_cast<int64_t>(rows.size()) >= n) break;
      rows.push_back(b.GetRow(i));
    }
  }
  return FromRows(state_->sc, state_->schema, rows, 1);
}

DataFrame DataFrame::GroupByAgg(const std::vector<std::string>& keys,
                                const std::vector<AggSpec>& aggs) const {
  SparkContext* sc = state_->sc;
  std::vector<int> key_cols;
  for (const auto& k : keys) key_cols.push_back(state_->schema.Index(k));
  int n = num_partitions();
  auto buckets = ShuffleRows(state_->schema, n, [&](const Row& row) {
    Row key;
    for (int c : key_cols) key.push_back(row[static_cast<size_t>(c)]);
    return HashRowKey(key);
  });

  // Output schema: keys then aggregates.
  std::vector<Field> fields;
  for (const auto& k : keys) {
    int idx = state_->schema.Index(k);
    fields.push_back(state_->schema.field(static_cast<size_t>(idx)));
  }
  for (const auto& a : aggs) {
    DataType t = DataType::kInt64;
    if (a.op == AggOp::kAvg) {
      t = DataType::kDouble;
    } else if (a.op != AggOp::kCount) {
      int idx = state_->schema.Index(a.column);
      if (idx >= 0) t = state_->schema.field(static_cast<size_t>(idx)).type;
    }
    fields.push_back(Field{a.alias, t});
  }
  Schema out_schema{fields};

  struct Acc {
    uint64_t count = 0;
    double sum = 0;
    Value min, max;
  };

  sc->BeginPhase();
  std::vector<RecordBatch> batches(static_cast<size_t>(n),
                                   MakeBatch(out_schema));
  sc->RunParallel(n, [&](int p) {
    const RecordBatch& in = buckets[static_cast<size_t>(p)];
    std::unordered_map<Row, std::vector<Acc>, RowHasher> groups;
    for (size_t i = 0; i < in.num_rows; ++i) {
      Row row = in.GetRow(i);
      Row key;
      for (int c : key_cols) key.push_back(row[static_cast<size_t>(c)]);
      auto& accs = groups[key];
      if (accs.empty()) accs.resize(aggs.size());
      for (size_t a = 0; a < aggs.size(); ++a) {
        Acc& acc = accs[a];
        ++acc.count;
        if (aggs[a].op == AggOp::kCount) continue;
        int c = state_->schema.Index(aggs[a].column);
        if (c < 0) continue;
        const Value& v = row[static_cast<size_t>(c)];
        if (IsNull(v)) continue;
        if (TypeOf(v) == DataType::kInt64) {
          acc.sum += static_cast<double>(std::get<int64_t>(v));
        } else if (TypeOf(v) == DataType::kDouble) {
          acc.sum += std::get<double>(v);
        }
        if (IsNull(acc.min) || (CompareValues(v, acc.min).ok() &&
                                *CompareValues(v, acc.min) < 0)) {
          acc.min = v;
        }
        if (IsNull(acc.max) || (CompareValues(v, acc.max).ok() &&
                                *CompareValues(v, acc.max) > 0)) {
          acc.max = v;
        }
      }
    }
    RecordBatch out = MakeBatch(out_schema);
    for (const auto& [key, accs] : groups) {
      Row row = key;
      for (size_t a = 0; a < aggs.size(); ++a) {
        const Acc& acc = accs[a];
        switch (aggs[a].op) {
          case AggOp::kCount:
            row.push_back(static_cast<int64_t>(acc.count));
            break;
          case AggOp::kSum: {
            int c = state_->schema.Index(aggs[a].column);
            bool is_int =
                c >= 0 && state_->schema.field(static_cast<size_t>(c)).type ==
                              DataType::kInt64;
            if (is_int) {
              row.push_back(static_cast<int64_t>(acc.sum));
            } else {
              row.push_back(acc.sum);
            }
            break;
          }
          case AggOp::kMin:
            row.push_back(acc.min);
            break;
          case AggOp::kMax:
            row.push_back(acc.max);
            break;
          case AggOp::kAvg:
            row.push_back(acc.count ? acc.sum / double(acc.count) : 0.0);
            break;
        }
      }
      out.AppendRow(row);
    }
    sc->ChargeTask(p, in.num_rows, 0);
    batches[static_cast<size_t>(p)] = std::move(out);
  });
  sc->EndPhase();
  return Make(sc, std::move(out_schema), std::move(batches), std::nullopt);
}

std::vector<Row> DataFrame::Collect() const {
  SparkContext* sc = state_->sc;
  sc->RecordJob();
  sc->BeginPhase();
  size_t np = state_->batches.size();
  // Scan tasks run concurrently; the merge walks slots in partition order.
  std::vector<std::vector<Row>> parts(np);
  sc->RunParallel(static_cast<int>(np), [&](int p) {
    const RecordBatch& b = state_->batches[static_cast<size_t>(p)];
    sc->ChargeTask(p, b.num_rows, b.MemoryBytes());
    auto& slot = parts[static_cast<size_t>(p)];
    slot.reserve(b.num_rows);
    for (size_t i = 0; i < b.num_rows; ++i) slot.push_back(b.GetRow(i));
  });
  sc->EndPhase();
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  std::vector<Row> rows;
  rows.reserve(total);
  for (auto& part : parts) {
    for (auto& row : part) rows.push_back(std::move(row));
  }
  return rows;
}

uint64_t DataFrame::Count() const {
  SparkContext* sc = state_->sc;
  sc->RecordJob();
  sc->BeginPhase();
  size_t np = state_->batches.size();
  std::vector<uint64_t> sizes(np, 0);
  sc->RunParallel(static_cast<int>(np), [&](int p) {
    const RecordBatch& b = state_->batches[static_cast<size_t>(p)];
    sc->ChargeTask(p, b.num_rows, 0);
    sizes[static_cast<size_t>(p)] = b.num_rows;
  });
  sc->EndPhase();
  uint64_t n = 0;
  for (uint64_t s : sizes) n += s;
  return n;
}

std::string DataFrame::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << state_->schema.ToString() << "\n";
  size_t shown = 0;
  for (const auto& b : state_->batches) {
    for (size_t i = 0; i < b.num_rows; ++i) {
      if (shown++ >= max_rows) {
        os << "... (" << NumRows() << " rows total)\n";
        return os.str();
      }
      Row row = b.GetRow(i);
      for (size_t c = 0; c < row.size(); ++c) {
        os << (c ? "\t" : "") << ValueToString(row[c]);
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace rdfspark::spark::sql
