#include "spark/sql/expr.h"

#include <algorithm>

namespace rdfspark::spark::sql {

Expr Expr::Column(std::string name) {
  auto node = std::make_shared<Node>();
  node->kind = ExprKind::kColumn;
  node->column = std::move(name);
  Expr e;
  e.node_ = std::move(node);
  return e;
}

Expr Expr::Literal(Value v) {
  auto node = std::make_shared<Node>();
  node->kind = ExprKind::kLiteral;
  node->literal = std::move(v);
  Expr e;
  e.node_ = std::move(node);
  return e;
}

Expr Expr::Unary(ExprKind kind, Expr child) {
  auto node = std::make_shared<Node>();
  node->kind = kind;
  node->children.push_back(std::move(child));
  Expr e;
  e.node_ = std::move(node);
  return e;
}

Expr Expr::Binary(ExprKind kind, Expr lhs, Expr rhs) {
  auto node = std::make_shared<Node>();
  node->kind = kind;
  node->children.push_back(std::move(lhs));
  node->children.push_back(std::move(rhs));
  Expr e;
  e.node_ = std::move(node);
  return e;
}

namespace {

Value BoolValue(bool b) { return Value(b); }

/// NULL-propagating comparison.
Value CompareToBool(const Value& a, const Value& b, ExprKind kind) {
  if (IsNull(a) || IsNull(b)) return Value{};
  auto cmp = CompareValues(a, b);
  if (!cmp.ok()) return Value{};
  switch (kind) {
    case ExprKind::kEq:
      return BoolValue(*cmp == 0);
    case ExprKind::kNe:
      return BoolValue(*cmp != 0);
    case ExprKind::kLt:
      return BoolValue(*cmp < 0);
    case ExprKind::kLe:
      return BoolValue(*cmp <= 0);
    case ExprKind::kGt:
      return BoolValue(*cmp > 0);
    case ExprKind::kGe:
      return BoolValue(*cmp >= 0);
    default:
      return Value{};
  }
}

Value Arith(const Value& a, const Value& b, ExprKind kind) {
  if (IsNull(a) || IsNull(b)) return Value{};
  bool both_int = TypeOf(a) == DataType::kInt64 && TypeOf(b) == DataType::kInt64;
  auto as_double = [](const Value& v) -> double {
    return TypeOf(v) == DataType::kInt64
               ? static_cast<double>(std::get<int64_t>(v))
               : (TypeOf(v) == DataType::kDouble ? std::get<double>(v) : 0.0);
  };
  if (TypeOf(a) != DataType::kInt64 && TypeOf(a) != DataType::kDouble) {
    return Value{};
  }
  if (TypeOf(b) != DataType::kInt64 && TypeOf(b) != DataType::kDouble) {
    return Value{};
  }
  if (both_int) {
    int64_t x = std::get<int64_t>(a), y = std::get<int64_t>(b);
    switch (kind) {
      case ExprKind::kAdd:
        return Value(x + y);
      case ExprKind::kSub:
        return Value(x - y);
      case ExprKind::kMul:
        return Value(x * y);
      default:
        return Value{};
    }
  }
  double x = as_double(a), y = as_double(b);
  switch (kind) {
    case ExprKind::kAdd:
      return Value(x + y);
    case ExprKind::kSub:
      return Value(x - y);
    case ExprKind::kMul:
      return Value(x * y);
    default:
      return Value{};
  }
}

}  // namespace

Value Expr::Eval(const Row& row, const Schema& schema) const {
  switch (node_->kind) {
    case ExprKind::kColumn: {
      int idx = schema.Index(node_->column);
      if (idx < 0) return Value{};
      return row[static_cast<size_t>(idx)];
    }
    case ExprKind::kLiteral:
      return node_->literal;
    case ExprKind::kEq:
    case ExprKind::kNe:
    case ExprKind::kLt:
    case ExprKind::kLe:
    case ExprKind::kGt:
    case ExprKind::kGe:
      return CompareToBool(node_->children[0].Eval(row, schema),
                           node_->children[1].Eval(row, schema), node_->kind);
    case ExprKind::kAnd: {
      Value a = node_->children[0].Eval(row, schema);
      Value b = node_->children[1].Eval(row, schema);
      if (TypeOf(a) == DataType::kBool && !std::get<bool>(a)) {
        return BoolValue(false);
      }
      if (TypeOf(b) == DataType::kBool && !std::get<bool>(b)) {
        return BoolValue(false);
      }
      if (IsNull(a) || IsNull(b)) return Value{};
      return BoolValue(std::get<bool>(a) && std::get<bool>(b));
    }
    case ExprKind::kOr: {
      Value a = node_->children[0].Eval(row, schema);
      Value b = node_->children[1].Eval(row, schema);
      if (TypeOf(a) == DataType::kBool && std::get<bool>(a)) {
        return BoolValue(true);
      }
      if (TypeOf(b) == DataType::kBool && std::get<bool>(b)) {
        return BoolValue(true);
      }
      if (IsNull(a) || IsNull(b)) return Value{};
      return BoolValue(std::get<bool>(a) || std::get<bool>(b));
    }
    case ExprKind::kNot: {
      Value a = node_->children[0].Eval(row, schema);
      if (TypeOf(a) != DataType::kBool) return Value{};
      return BoolValue(!std::get<bool>(a));
    }
    case ExprKind::kIsNull:
      return BoolValue(IsNull(node_->children[0].Eval(row, schema)));
    case ExprKind::kAdd:
    case ExprKind::kSub:
    case ExprKind::kMul:
      return Arith(node_->children[0].Eval(row, schema),
                   node_->children[1].Eval(row, schema), node_->kind);
  }
  return Value{};
}

bool Expr::EvalPredicate(const Row& row, const Schema& schema) const {
  Value v = Eval(row, schema);
  return TypeOf(v) == DataType::kBool && std::get<bool>(v);
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  if (node_->kind == ExprKind::kColumn) {
    if (std::find(out->begin(), out->end(), node_->column) == out->end()) {
      out->push_back(node_->column);
    }
  }
  for (const Expr& c : node_->children) c.CollectColumns(out);
}

bool Expr::ResolvedBy(const Schema& schema) const {
  std::vector<std::string> cols;
  CollectColumns(&cols);
  for (const auto& c : cols) {
    if (schema.Index(c) < 0) return false;
  }
  return true;
}

std::string Expr::ToString() const {
  switch (node_->kind) {
    case ExprKind::kColumn:
      return node_->column;
    case ExprKind::kLiteral:
      return ValueToString(node_->literal);
    case ExprKind::kNot:
      return "NOT (" + node_->children[0].ToString() + ")";
    case ExprKind::kIsNull:
      return "(" + node_->children[0].ToString() + " IS NULL)";
    default: {
      const char* op = "?";
      switch (node_->kind) {
        case ExprKind::kEq: op = "="; break;
        case ExprKind::kNe: op = "!="; break;
        case ExprKind::kLt: op = "<"; break;
        case ExprKind::kLe: op = "<="; break;
        case ExprKind::kGt: op = ">"; break;
        case ExprKind::kGe: op = ">="; break;
        case ExprKind::kAnd: op = "AND"; break;
        case ExprKind::kOr: op = "OR"; break;
        case ExprKind::kAdd: op = "+"; break;
        case ExprKind::kSub: op = "-"; break;
        case ExprKind::kMul: op = "*"; break;
        default: break;
      }
      return "(" + node_->children[0].ToString() + " " + op + " " +
             node_->children[1].ToString() + ")";
    }
  }
}

Expr Col(std::string name) { return Expr::Column(std::move(name)); }
Expr Lit(Value v) { return Expr::Literal(std::move(v)); }

Expr operator==(Expr a, Expr b) {
  return Expr::Binary(ExprKind::kEq, std::move(a), std::move(b));
}
Expr operator!=(Expr a, Expr b) {
  return Expr::Binary(ExprKind::kNe, std::move(a), std::move(b));
}
Expr operator<(Expr a, Expr b) {
  return Expr::Binary(ExprKind::kLt, std::move(a), std::move(b));
}
Expr operator<=(Expr a, Expr b) {
  return Expr::Binary(ExprKind::kLe, std::move(a), std::move(b));
}
Expr operator>(Expr a, Expr b) {
  return Expr::Binary(ExprKind::kGt, std::move(a), std::move(b));
}
Expr operator>=(Expr a, Expr b) {
  return Expr::Binary(ExprKind::kGe, std::move(a), std::move(b));
}
Expr operator&&(Expr a, Expr b) {
  return Expr::Binary(ExprKind::kAnd, std::move(a), std::move(b));
}
Expr operator||(Expr a, Expr b) {
  return Expr::Binary(ExprKind::kOr, std::move(a), std::move(b));
}
Expr operator!(Expr a) { return Expr::Unary(ExprKind::kNot, std::move(a)); }
Expr operator+(Expr a, Expr b) {
  return Expr::Binary(ExprKind::kAdd, std::move(a), std::move(b));
}
Expr operator-(Expr a, Expr b) {
  return Expr::Binary(ExprKind::kSub, std::move(a), std::move(b));
}
Expr operator*(Expr a, Expr b) {
  return Expr::Binary(ExprKind::kMul, std::move(a), std::move(b));
}

void SplitConjuncts(const Expr& e, std::vector<Expr>* out) {
  if (e.kind() == ExprKind::kAnd) {
    SplitConjuncts(e.children()[0], out);
    SplitConjuncts(e.children()[1], out);
  } else {
    out->push_back(e);
  }
}

Expr CombineConjuncts(const std::vector<Expr>& conjuncts) {
  Expr out;
  for (const Expr& c : conjuncts) {
    out = out.valid() ? (out && c) : c;
  }
  return out;
}

}  // namespace rdfspark::spark::sql
