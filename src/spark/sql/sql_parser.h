#ifndef RDFSPARK_SPARK_SQL_SQL_PARSER_H_
#define RDFSPARK_SPARK_SQL_SQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "spark/sql/logical_plan.h"

namespace rdfspark::spark::sql {

/// Parses a SQL query into a logical plan. Supported fragment:
///
///   SELECT [DISTINCT] (* | item[, item...])
///   FROM table [alias]
///   [[LEFT [OUTER]] JOIN table [alias] ON cond]*
///   [WHERE expr]
///   [GROUP BY col[, col...]]
///   [ORDER BY col [ASC|DESC][, ...]]
///   [LIMIT n]
///
/// where item := col [AS name] | COUNT(*|col) | SUM/MIN/MAX/AVG(col)
/// [AS name], and expressions support =, !=, <, <=, >, >=, AND, OR, NOT,
/// parentheses, numeric and 'string' literals. Qualified column names use
/// dots ("t0.s"). This is the fragment S2RDF's SPARQL-to-SQL translation
/// emits.
Result<PlanPtr> ParseSql(std::string_view text);

}  // namespace rdfspark::spark::sql

#endif  // RDFSPARK_SPARK_SQL_SQL_PARSER_H_
