#include "spark/sql/sql_parser.h"

#include <cctype>
#include <cstdlib>

namespace rdfspark::spark::sql {

namespace {

enum class SqlTok { kEof, kIdent, kNumber, kString, kPunct, kKeyword };

struct Token {
  SqlTok kind = SqlTok::kEof;
  std::string text;
};

const char* kKeywords[] = {"SELECT", "DISTINCT", "FROM",  "JOIN",  "LEFT",
                           "OUTER",  "INNER",    "ON",    "WHERE", "GROUP",
                           "BY",     "ORDER",    "ASC",   "DESC",  "LIMIT",
                           "AS",     "AND",      "OR",    "NOT",   "COUNT",
                           "SUM",    "MIN",      "MAX",   "AVG",   "UNION",
                           "IS",     "NULL"};

bool IsKeyword(const std::string& upper) {
  for (const char* k : kKeywords) {
    if (upper == k) return true;
  }
  return false;
}

Result<std::vector<Token>> Lex(std::string_view text) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_' || text[i] == '.')) {
        ++i;
      }
      std::string word(text.substr(start, i - start));
      std::string upper = word;
      for (char& ch : upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      if (IsKeyword(upper) && word.find('.') == std::string::npos) {
        tok.kind = SqlTok::kKeyword;
        tok.text = upper;
      } else {
        tok.kind = SqlTok::kIdent;
        tok.text = word;
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < text.size() &&
                std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      bool dot = false;
      while (i < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[i])) ||
              (text[i] == '.' && !dot))) {
        if (text[i] == '.') dot = true;
        ++i;
      }
      tok.kind = SqlTok::kNumber;
      tok.text.assign(text.substr(start, i - start));
    } else if (c == '\'') {
      std::string value;
      ++i;
      bool closed = false;
      while (i < text.size()) {
        if (text[i] == '\'') {
          if (i + 1 < text.size() && text[i + 1] == '\'') {
            value.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value.push_back(text[i]);
        ++i;
      }
      if (!closed) return Status::ParseError("unterminated string literal");
      tok.kind = SqlTok::kString;
      tok.text = std::move(value);
    } else {
      auto two = text.substr(i, 2);
      if (two == "!=" || two == "<=" || two == ">=" || two == "<>") {
        tok.kind = SqlTok::kPunct;
        tok.text = two == "<>" ? "!=" : std::string(two);
        i += 2;
      } else if (std::string("(),*=<>").find(c) != std::string::npos) {
        tok.kind = SqlTok::kPunct;
        tok.text.assign(1, c);
        ++i;
      } else {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' in SQL");
      }
    }
    out.push_back(std::move(tok));
  }
  out.push_back(Token{});
  return out;
}

struct SelectItem {
  bool is_star = false;
  bool is_agg = false;
  AggSpec agg;
  Expr expr;         // non-agg
  std::string name;  // output name
};

class SqlParser {
 public:
  explicit SqlParser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<PlanPtr> Parse() {
    RDFSPARK_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    bool distinct = false;
    if (PeekKeyword("DISTINCT")) {
      Advance();
      distinct = true;
    }
    std::vector<SelectItem> items;
    while (true) {
      RDFSPARK_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      items.push_back(std::move(item));
      if (Peek().kind == SqlTok::kPunct && Peek().text == ",") {
        Advance();
        continue;
      }
      break;
    }
    RDFSPARK_RETURN_NOT_OK(ExpectKeyword("FROM"));
    RDFSPARK_ASSIGN_OR_RETURN(PlanPtr plan, ParseTableRef());
    while (PeekKeyword("JOIN") || PeekKeyword("LEFT") ||
           PeekKeyword("INNER")) {
      JoinType type = JoinType::kInner;
      if (PeekKeyword("LEFT")) {
        Advance();
        if (PeekKeyword("OUTER")) Advance();
        type = JoinType::kLeftOuter;
      } else if (PeekKeyword("INNER")) {
        Advance();
      }
      RDFSPARK_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      RDFSPARK_ASSIGN_OR_RETURN(PlanPtr right, ParseTableRef());
      RDFSPARK_RETURN_NOT_OK(ExpectKeyword("ON"));
      RDFSPARK_ASSIGN_OR_RETURN(Expr cond, ParseOr());
      plan = MakeJoin(std::move(plan), std::move(right), std::move(cond),
                      type);
    }
    if (PeekKeyword("WHERE")) {
      Advance();
      RDFSPARK_ASSIGN_OR_RETURN(Expr pred, ParseOr());
      plan = MakeFilter(std::move(plan), std::move(pred));
    }
    std::vector<std::string> group_keys;
    bool has_group = false;
    if (PeekKeyword("GROUP")) {
      Advance();
      RDFSPARK_RETURN_NOT_OK(ExpectKeyword("BY"));
      has_group = true;
      while (Peek().kind == SqlTok::kIdent) {
        group_keys.push_back(Peek().text);
        Advance();
        if (Peek().kind == SqlTok::kPunct && Peek().text == ",") {
          Advance();
          continue;
        }
        break;
      }
      if (group_keys.empty()) return Error("GROUP BY expects columns");
    }

    // Parse the trailing modifiers first; where Sort lands depends on
    // whether the sort keys survive the projection.
    std::vector<std::pair<std::string, bool>> sort_keys;
    if (PeekKeyword("ORDER")) {
      Advance();
      RDFSPARK_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (Peek().kind == SqlTok::kIdent) {
        std::string col = Peek().text;
        Advance();
        bool asc = true;
        if (PeekKeyword("ASC")) {
          Advance();
        } else if (PeekKeyword("DESC")) {
          Advance();
          asc = false;
        }
        sort_keys.emplace_back(col, asc);
        if (Peek().kind == SqlTok::kPunct && Peek().text == ",") {
          Advance();
          continue;
        }
        break;
      }
      if (sort_keys.empty()) return Error("ORDER BY expects columns");
    }

    bool any_agg = false;
    for (const auto& item : items) any_agg |= item.is_agg;
    if (any_agg || has_group) {
      std::vector<AggSpec> aggs;
      std::vector<std::pair<Expr, std::string>> post;
      for (const auto& item : items) {
        if (item.is_star) return Error("SELECT * incompatible with GROUP BY");
        if (item.is_agg) {
          aggs.push_back(item.agg);
          post.emplace_back(Col(item.agg.alias), item.name);
        } else {
          if (item.expr.kind() != ExprKind::kColumn) {
            return Error("non-aggregate select items must be columns");
          }
          post.emplace_back(item.expr, item.name);
        }
      }
      plan = MakeAggregate(std::move(plan), std::move(group_keys),
                           std::move(aggs));
      plan = MakeProject(std::move(plan), std::move(post));
      if (distinct) plan = MakeDistinct(std::move(plan));
      if (!sort_keys.empty()) plan = MakeSort(std::move(plan), sort_keys);
    } else {
      bool star = items.size() == 1 && items[0].is_star;
      // Sort keys that are select aliases map back to their source column;
      // keys absent from the projection force the sort below it.
      bool sort_below = false;
      std::vector<std::pair<std::string, bool>> mapped_keys = sort_keys;
      if (!star) {
        for (auto& [key, asc] : mapped_keys) {
          bool in_output = false;
          for (const auto& item : items) {
            if (item.name == key) {
              in_output = true;
              if (item.expr.kind() == ExprKind::kColumn) {
                key = item.expr.column();
              }
              break;
            }
          }
          if (!in_output) sort_below = true;
          // Either way the (possibly remapped) key names a child column or
          // an expression alias; sorting below the projection handles both
          // column cases.
        }
      }
      if (!sort_keys.empty() && (star || sort_below || !distinct)) {
        // Sort below projection (safe: child schema has the columns).
        plan = MakeSort(std::move(plan), mapped_keys);
      }
      if (!star) {
        std::vector<std::pair<Expr, std::string>> projections;
        for (const auto& item : items) {
          projections.emplace_back(item.expr, item.name);
        }
        plan = MakeProject(std::move(plan), std::move(projections));
      }
      if (distinct) {
        plan = MakeDistinct(std::move(plan));
        // DISTINCT shuffles and destroys order; re-sort on top when the
        // keys survived projection.
        if (!sort_keys.empty() && !sort_below) {
          plan = MakeSort(std::move(plan), sort_keys);
        }
      }
    }
    if (PeekKeyword("LIMIT")) {
      Advance();
      if (Peek().kind != SqlTok::kNumber) return Error("LIMIT expects number");
      plan = MakeLimit(std::move(plan),
                       std::strtoll(Peek().text.c_str(), nullptr, 10));
      Advance();
    }
    if (Peek().kind != SqlTok::kEof) {
      return Error("trailing tokens: '" + Peek().text + "'");
    }
    return plan;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool PeekKeyword(std::string_view kw) const {
    return Peek().kind == SqlTok::kKeyword && Peek().text == kw;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError("SQL: " + msg);
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!PeekKeyword(kw)) {
      return Error("expected " + std::string(kw) + ", got '" + Peek().text +
                   "'");
    }
    Advance();
    return Status::OK();
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    const Token& t = Peek();
    if (t.kind == SqlTok::kPunct && t.text == "*") {
      Advance();
      item.is_star = true;
      return item;
    }
    auto agg_op = [&](const std::string& kw) -> std::optional<AggOp> {
      if (kw == "COUNT") return AggOp::kCount;
      if (kw == "SUM") return AggOp::kSum;
      if (kw == "MIN") return AggOp::kMin;
      if (kw == "MAX") return AggOp::kMax;
      if (kw == "AVG") return AggOp::kAvg;
      return std::nullopt;
    };
    if (t.kind == SqlTok::kKeyword) {
      auto op = agg_op(t.text);
      if (!op) return Error("unexpected keyword '" + t.text + "' in SELECT");
      Advance();
      if (!(Peek().kind == SqlTok::kPunct && Peek().text == "(")) {
        return Error("aggregate expects '('");
      }
      Advance();
      item.is_agg = true;
      item.agg.op = *op;
      if (Peek().kind == SqlTok::kPunct && Peek().text == "*") {
        if (*op != AggOp::kCount) return Error("only COUNT(*) allowed");
        Advance();
      } else if (Peek().kind == SqlTok::kIdent) {
        item.agg.column = Peek().text;
        Advance();
      } else {
        return Error("aggregate expects column or '*'");
      }
      if (!(Peek().kind == SqlTok::kPunct && Peek().text == ")")) {
        return Error("aggregate expects ')'");
      }
      Advance();
      item.agg.alias = "agg_" + std::to_string(agg_counter_++);
      item.name = item.agg.alias;
    } else if (t.kind == SqlTok::kIdent) {
      item.expr = Col(t.text);
      item.name = t.text;
      Advance();
    } else if (t.kind == SqlTok::kNumber) {
      item.expr = t.text.find('.') != std::string::npos
                      ? Lit(Value(std::strtod(t.text.c_str(), nullptr)))
                      : Lit(Value(int64_t{
                            std::strtoll(t.text.c_str(), nullptr, 10)}));
      item.name = "lit_" + std::to_string(agg_counter_++);
      Advance();
    } else if (t.kind == SqlTok::kString) {
      item.expr = Lit(Value(t.text));
      item.name = "lit_" + std::to_string(agg_counter_++);
      Advance();
    } else {
      return Error("expected select item, got '" + t.text + "'");
    }
    if (PeekKeyword("AS")) {
      Advance();
      if (Peek().kind != SqlTok::kIdent) return Error("AS expects a name");
      item.name = Peek().text;
      if (item.is_agg) item.agg.alias = item.name;
      Advance();
    }
    return item;
  }

  Result<PlanPtr> ParseTableRef() {
    if (Peek().kind != SqlTok::kIdent) return Error("expected table name");
    std::string table = Peek().text;
    Advance();
    std::string alias;
    if (Peek().kind == SqlTok::kIdent) {
      alias = Peek().text;
      Advance();
    }
    return MakeScan(std::move(table), std::move(alias));
  }

  Result<Expr> ParseOr() {
    RDFSPARK_ASSIGN_OR_RETURN(Expr lhs, ParseAnd());
    while (PeekKeyword("OR")) {
      Advance();
      RDFSPARK_ASSIGN_OR_RETURN(Expr rhs, ParseAnd());
      lhs = lhs || rhs;
    }
    return lhs;
  }

  Result<Expr> ParseAnd() {
    RDFSPARK_ASSIGN_OR_RETURN(Expr lhs, ParseNot());
    while (PeekKeyword("AND")) {
      Advance();
      RDFSPARK_ASSIGN_OR_RETURN(Expr rhs, ParseNot());
      lhs = lhs && rhs;
    }
    return lhs;
  }

  Result<Expr> ParseNot() {
    if (PeekKeyword("NOT")) {
      Advance();
      RDFSPARK_ASSIGN_OR_RETURN(Expr inner, ParseNot());
      return !inner;
    }
    return ParseComparison();
  }

  Result<Expr> ParseComparison() {
    RDFSPARK_ASSIGN_OR_RETURN(Expr lhs, ParseOperand());
    const Token& t = Peek();
    if (PeekKeyword("IS")) {
      Advance();
      bool negated = false;
      if (PeekKeyword("NOT")) {
        Advance();
        negated = true;
      }
      RDFSPARK_RETURN_NOT_OK(ExpectKeyword("NULL"));
      Expr e = Expr::Unary(ExprKind::kIsNull, std::move(lhs));
      return negated ? !e : e;
    }
    if (t.kind == SqlTok::kPunct) {
      ExprKind kind;
      if (t.text == "=") {
        kind = ExprKind::kEq;
      } else if (t.text == "!=") {
        kind = ExprKind::kNe;
      } else if (t.text == "<") {
        kind = ExprKind::kLt;
      } else if (t.text == "<=") {
        kind = ExprKind::kLe;
      } else if (t.text == ">") {
        kind = ExprKind::kGt;
      } else if (t.text == ">=") {
        kind = ExprKind::kGe;
      } else {
        return lhs;
      }
      Advance();
      RDFSPARK_ASSIGN_OR_RETURN(Expr rhs, ParseOperand());
      return Expr::Binary(kind, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Expr> ParseOperand() {
    const Token& t = Peek();
    if (t.kind == SqlTok::kPunct && t.text == "(") {
      Advance();
      RDFSPARK_ASSIGN_OR_RETURN(Expr inner, ParseOr());
      if (!(Peek().kind == SqlTok::kPunct && Peek().text == ")")) {
        return Error("expected ')'");
      }
      Advance();
      return inner;
    }
    if (t.kind == SqlTok::kIdent) {
      Expr e = Col(t.text);
      Advance();
      return e;
    }
    if (t.kind == SqlTok::kNumber) {
      Expr e = t.text.find('.') != std::string::npos
                   ? Lit(Value(std::strtod(t.text.c_str(), nullptr)))
                   : Lit(Value(int64_t{
                         std::strtoll(t.text.c_str(), nullptr, 10)}));
      Advance();
      return e;
    }
    if (t.kind == SqlTok::kString) {
      Expr e = Lit(Value(t.text));
      Advance();
      return e;
    }
    return Error("expected operand, got '" + t.text + "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int agg_counter_ = 0;
};

}  // namespace

Result<PlanPtr> ParseSql(std::string_view text) {
  RDFSPARK_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  SqlParser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace rdfspark::spark::sql
