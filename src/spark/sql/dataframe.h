#ifndef RDFSPARK_SPARK_SQL_DATAFRAME_H_
#define RDFSPARK_SPARK_SQL_DATAFRAME_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "spark/context.h"
#include "spark/sql/column.h"
#include "spark/sql/expr.h"
#include "spark/sql/value.h"

namespace rdfspark::spark::sql {

enum class JoinType { kInner, kLeftOuter };

/// Physical join strategy. kAuto applies Spark's rule: broadcast the smaller
/// side when its estimated size is under the configured threshold, else
/// shuffle both sides (the cost-based choice [21] §IV.A.3 discusses).
enum class JoinStrategy { kAuto, kBroadcast, kShuffleHash, kCartesian };

/// Aggregate functions for GroupByAgg.
enum class AggOp { kCount, kSum, kMin, kMax, kAvg };

struct AggSpec {
  AggOp op = AggOp::kCount;
  std::string column;  // ignored for kCount
  std::string alias;
};

/// An immutable, partitioned, columnar table — the simulator's counterpart
/// of Spark's DataFrame. Operations execute eagerly against the in-memory
/// batches but charge the same cost/metrics model as the RDD layer, so
/// RDD-vs-DataFrame comparisons are apples-to-apples.
class DataFrame {
 public:
  DataFrame() = default;

  /// Builds a DataFrame from rows, hashed round-robin into partitions.
  static DataFrame FromRows(SparkContext* sc, Schema schema,
                            const std::vector<Row>& rows,
                            int num_partitions = -1);

  bool valid() const { return state_ != nullptr; }
  SparkContext* context() const { return state_->sc; }
  const Schema& schema() const { return state_->schema; }
  int num_partitions() const {
    return static_cast<int>(state_->batches.size());
  }
  const std::optional<PartitionerInfo>& partitioner() const {
    return state_->partitioner;
  }

  /// Rows across all partitions (cheap — data is resident).
  uint64_t NumRows() const;

  /// Estimated resident bytes; drives broadcast-join selection.
  uint64_t EstimatedBytes() const;

  // ------------------------------------------------------------------
  // Transformations (eager).
  // ------------------------------------------------------------------

  /// Keeps the named columns, in order.
  DataFrame Select(const std::vector<std::string>& columns) const;

  /// Computes projections with output names.
  DataFrame SelectExprs(
      const std::vector<std::pair<Expr, std::string>>& projections) const;

  /// Renames all columns (size must match schema).
  DataFrame Rename(const std::vector<std::string>& names) const;

  DataFrame Filter(const Expr& predicate) const;

  /// Equi-join on (left column, right column) pairs.
  DataFrame Join(const DataFrame& right,
                 const std::vector<std::pair<std::string, std::string>>& keys,
                 JoinType type = JoinType::kInner,
                 JoinStrategy strategy = JoinStrategy::kAuto) const;

  /// Cartesian product (what a naive SQL translation of multi-pattern BGPs
  /// degenerates to, per [21]).
  DataFrame CrossJoin(const DataFrame& right) const;

  DataFrame Union(const DataFrame& other) const;
  DataFrame Distinct() const;

  /// Global sort by (column, ascending) keys.
  DataFrame Sort(const std::vector<std::pair<std::string, bool>>& keys) const;

  DataFrame Limit(int64_t n) const;

  /// Hash-partitions by the given key columns; a subsequent equi-join on the
  /// same keys is shuffle-free.
  DataFrame PartitionBy(const std::vector<std::string>& columns,
                        int num_partitions = -1) const;

  /// Declares (without moving data) that rows are already placed as if
  /// PartitionBy(columns) had run — for operators that provably preserve
  /// placement (e.g. a projection renaming the partition key). The caller
  /// owns the proof.
  DataFrame AssumePartitionedBy(const std::vector<std::string>& columns) const;

  /// Group-by aggregation (shuffle by keys, then local aggregation).
  DataFrame GroupByAgg(const std::vector<std::string>& keys,
                       const std::vector<AggSpec>& aggs) const;

  // ------------------------------------------------------------------
  // Actions.
  // ------------------------------------------------------------------

  std::vector<Row> Collect() const;
  uint64_t Count() const;

  /// Actual columnar footprint (dictionary-encoded).
  uint64_t MemoryFootprint() const;

  std::string ToString(size_t max_rows = 20) const;

 private:
  struct State {
    SparkContext* sc = nullptr;
    Schema schema;
    std::vector<RecordBatch> batches;
    std::optional<PartitionerInfo> partitioner;
  };

  static DataFrame Make(SparkContext* sc, Schema schema,
                        std::vector<RecordBatch> batches,
                        std::optional<PartitionerInfo> partitioner);

  /// Shuffles rows into `num_partitions` buckets keyed by `key_of`, charging
  /// shuffle metrics; returns per-target batches.
  template <typename KeyFn>
  std::vector<RecordBatch> ShuffleRows(const Schema& out_schema,
                                       int num_partitions, KeyFn key_of) const;

  DataFrame ShuffleHashJoin(
      const DataFrame& right,
      const std::vector<std::pair<std::string, std::string>>& keys,
      JoinType type) const;
  DataFrame BroadcastJoin(
      const DataFrame& right,
      const std::vector<std::pair<std::string, std::string>>& keys,
      JoinType type) const;

  std::shared_ptr<const State> state_;
};

}  // namespace rdfspark::spark::sql

#endif  // RDFSPARK_SPARK_SQL_DATAFRAME_H_
