#include "spark/sql/value.h"

#include "common/hash.h"

namespace rdfspark::spark::sql {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "null";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kBool:
      return "bool";
  }
  return "unknown";
}

DataType TypeOf(const Value& v) {
  switch (v.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kInt64;
    case 2:
      return DataType::kDouble;
    case 3:
      return DataType::kString;
    case 4:
      return DataType::kBool;
  }
  return DataType::kNull;
}

bool IsNull(const Value& v) { return v.index() == 0; }

std::string ValueToString(const Value& v) {
  switch (v.index()) {
    case 0:
      return "NULL";
    case 1:
      return std::to_string(std::get<int64_t>(v));
    case 2: {
      std::string s = std::to_string(std::get<double>(v));
      return s;
    }
    case 3:
      return "'" + std::get<std::string>(v) + "'";
    case 4:
      return std::get<bool>(v) ? "true" : "false";
  }
  return "?";
}

namespace {

bool BothNumeric(const Value& a, const Value& b, double* x, double* y) {
  auto num = [](const Value& v, double* out) {
    if (v.index() == 1) {
      *out = static_cast<double>(std::get<int64_t>(v));
      return true;
    }
    if (v.index() == 2) {
      *out = std::get<double>(v);
      return true;
    }
    return false;
  };
  return num(a, x) && num(b, y);
}

}  // namespace

Result<int> CompareValues(const Value& a, const Value& b) {
  if (IsNull(a) || IsNull(b)) {
    return Status::InvalidArgument("NULL is not comparable");
  }
  double x, y;
  if (BothNumeric(a, b, &x, &y)) {
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (TypeOf(a) != TypeOf(b)) {
    return Status::InvalidArgument(
        std::string("cannot compare ") + DataTypeName(TypeOf(a)) + " with " +
        DataTypeName(TypeOf(b)));
  }
  if (TypeOf(a) == DataType::kString) {
    const auto& sa = std::get<std::string>(a);
    const auto& sb = std::get<std::string>(b);
    return sa < sb ? -1 : (sa > sb ? 1 : 0);
  }
  bool ba = std::get<bool>(a), bb = std::get<bool>(b);
  return ba == bb ? 0 : (ba ? 1 : -1);
}

bool ValuesEqual(const Value& a, const Value& b) {
  if (IsNull(a) || IsNull(b)) return false;
  auto cmp = CompareValues(a, b);
  return cmp.ok() && *cmp == 0;
}

uint64_t HashValue(const Value& v) {
  switch (v.index()) {
    case 0:
      return 0x9e3779b97f4a7c15ULL;
    case 1:
      return MixHash64(static_cast<uint64_t>(std::get<int64_t>(v)));
    case 2: {
      double d = std::get<double>(v);
      // Hash doubles through their int64 value when integral so that joins
      // between int and double columns hash consistently.
      int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) {
        return MixHash64(static_cast<uint64_t>(as_int));
      }
      uint64_t bits;
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return MixHash64(bits);
    }
    case 3:
      return Fnv1a64(std::get<std::string>(v));
    case 4:
      return MixHash64(std::get<bool>(v) ? 1 : 2);
  }
  return 0;
}

uint64_t EstimateSize(const Value& v) {
  switch (v.index()) {
    case 0:
      return 1;
    case 3:
      return 16 + std::get<std::string>(v).size();
    default:
      return 8;
  }
}

uint64_t EstimateSize(const Row& row) {
  uint64_t total = 16;
  for (const Value& v : row) total += EstimateSize(v);
  return total;
}

int Schema::Index(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += DataTypeName(fields_[i].type);
  }
  out += "]";
  return out;
}

}  // namespace rdfspark::spark::sql
