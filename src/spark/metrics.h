#ifndef RDFSPARK_SPARK_METRICS_H_
#define RDFSPARK_SPARK_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace rdfspark::spark {

/// A counter with value semantics and relaxed-atomic updates. Partition
/// tasks run concurrently on the executor pool, so every counter the
/// compute lambdas touch must tolerate unsynchronized increments; copies
/// (metric snapshots, deltas) read a plain value. Relaxed ordering is
/// sufficient: counters are independent tallies, and the scheduler's
/// join barrier orders them against readers.
class Counter {
 public:
  constexpr Counter() noexcept = default;
  Counter(uint64_t v) noexcept : v_(v) {}
  Counter(const Counter& o) noexcept : v_(o.value()) {}
  Counter& operator=(const Counter& o) noexcept {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }
  Counter& operator=(uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  operator uint64_t() const noexcept { return value(); }
  uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  Counter& operator+=(uint64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  Counter& operator-=(uint64_t d) noexcept {
    v_.fetch_sub(d, std::memory_order_relaxed);
    return *this;
  }
  Counter& operator++() noexcept {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  uint64_t operator++(int) noexcept {
    return v_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Raises the stored value to at least `v` (relaxed CAS loop). Used by
  /// Histogram for running maxima; commutative, so still deterministic
  /// across interleavings.
  void UpdateMax(uint64_t v) noexcept {
    uint64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Power-of-two-bucketed distribution of uint64 samples with exact count,
/// sum and max. Bucket i holds samples whose bit width is i (bucket 0 is
/// the value 0), so bucketing needs no configuration and recording is a
/// couple of relaxed increments — safe from concurrent partition tasks and
/// interleaving-independent like every other metric.
///
/// Deltas: count, sum and buckets subtract exactly; the running max cannot
/// be windowed, so operator- keeps the lhs max (documented: max is
/// since-construction). Benches snapshot fresh contexts, where the two
/// notions coincide.
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void Record(uint64_t v) noexcept {
    ++buckets_[BucketOf(v)];
    ++count_;
    sum_ += v;
    max_.UpdateMax(v);
  }

  uint64_t count() const noexcept { return count_; }
  uint64_t sum() const noexcept { return sum_; }
  uint64_t max_value() const noexcept { return max_; }
  uint64_t bucket(int i) const noexcept { return buckets_[i]; }

  double Mean() const noexcept {
    uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum()) / static_cast<double>(n);
  }

  /// Ratio max / mean (1.0 = perfectly balanced); 0 when empty. With task
  /// record counts as samples this is the partition-skew ratio.
  double SkewVsMean() const noexcept {
    double mean = Mean();
    return mean == 0.0 ? 0.0 : static_cast<double>(max_value()) / mean;
  }

  /// Upper bound of the bucket containing the q-quantile sample (q in
  /// [0,1]); an over-approximation within 2x, exact at the top (the last
  /// occupied bucket's bound is clamped to the true max). 0 when empty.
  uint64_t QuantileUpperBound(double q) const noexcept;

  Histogram& operator+=(const Histogram& rhs) noexcept;
  /// Bucketwise difference; max is kept from *this (see class comment).
  Histogram operator-(const Histogram& rhs) const noexcept;

  /// One-line summary: count / mean / p50 / p95 / max / skew.
  std::string ToString() const;

  static int BucketOf(uint64_t v) noexcept {
    int b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b < kBuckets ? b : kBuckets - 1;
  }

 private:
  Counter buckets_[kBuckets];
  Counter count_;
  Counter sum_;
  Counter max_;
};

/// Simulated time held as integer nanoseconds so that accumulation is
/// associative and commutative: the total is bit-identical no matter in
/// which order concurrent phases fold their maxima in. Reads convert to
/// milliseconds (the unit every report uses).
class SimTime {
 public:
  constexpr SimTime() noexcept = default;
  SimTime(double ms) noexcept : ns_(NanosFromMs(ms)) {}
  SimTime(const SimTime& o) noexcept : ns_(o.nanos()) {}
  SimTime& operator=(const SimTime& o) noexcept {
    ns_.store(o.nanos(), std::memory_order_relaxed);
    return *this;
  }
  SimTime& operator=(double ms) noexcept {
    ns_.store(NanosFromMs(ms), std::memory_order_relaxed);
    return *this;
  }

  operator double() const noexcept { return ms(); }
  double ms() const noexcept { return static_cast<double>(nanos()) / 1e6; }
  uint64_t nanos() const noexcept {
    return ns_.load(std::memory_order_relaxed);
  }

  void AddNanos(uint64_t d) noexcept {
    ns_.fetch_add(d, std::memory_order_relaxed);
  }
  SimTime& operator+=(const SimTime& o) noexcept {
    AddNanos(o.nanos());
    return *this;
  }
  SimTime& operator+=(double delta_ms) noexcept {
    AddNanos(NanosFromMs(delta_ms));
    return *this;
  }
  friend SimTime operator-(const SimTime& a, const SimTime& b) noexcept {
    SimTime d;
    uint64_t an = a.nanos(), bn = b.nanos();
    d.ns_.store(an > bn ? an - bn : 0, std::memory_order_relaxed);
    return d;
  }

  static uint64_t NanosFromMs(double ms) noexcept {
    return ms <= 0 ? 0 : static_cast<uint64_t>(ms * 1e6 + 0.5);
  }

 private:
  std::atomic<uint64_t> ns_{0};
};

/// Field lists for Metrics, X-macro style. operator-/operator+=/ToString/
/// ForEachNumericField and the field-coverage test in tests/metrics_test.cc
/// all expand these, so a counter added here is automatically covered by
/// snapshots, deltas, dumps and machine-readable exports — and a counter
/// added to the struct but not to a list trips the sizeof static_assert in
/// metrics.cc. Append new fields to the matching list.
#define RDFSPARK_METRICS_COUNTER_FIELDS(X) \
  X(jobs)                                  \
  X(stages)                                \
  X(tasks)                                 \
  X(shuffle_records)                       \
  X(shuffle_bytes)                         \
  X(remote_shuffle_bytes)                  \
  X(local_read_records)                    \
  X(remote_read_records)                   \
  X(broadcast_bytes)                       \
  X(join_comparisons)                      \
  X(records_processed)                     \
  X(messages)                              \
  X(supersteps)

#define RDFSPARK_METRICS_SIMTIME_FIELDS(X) X(simulated_ms)

#define RDFSPARK_METRICS_HISTOGRAM_FIELDS(X) \
  X(task_duration_ns)                        \
  X(task_records)

/// Execution counters accumulated by the cluster simulator. Everything the
/// assessment benchmarks report (shuffle volume, locality, comparisons,
/// supersteps, simulated wall time) comes out of this struct; engines obtain
/// deltas by snapshotting before/after a query. Fields are relaxed atomics
/// (see Counter) because partition tasks update them concurrently.
struct Metrics {
  Counter jobs;    ///< Actions executed.
  Counter stages;  ///< Stages (shuffle boundaries + result stages).
  Counter tasks;   ///< Per-partition tasks launched.

  Counter shuffle_records;  ///< Records written through shuffles.
  Counter shuffle_bytes;    ///< Estimated bytes written through shuffles.
  Counter remote_shuffle_bytes;  ///< Subset crossing executor boundaries.

  Counter local_read_records;   ///< Partition reads served locally.
  Counter remote_read_records;  ///< Partition reads from other executors.

  Counter broadcast_bytes;  ///< Bytes replicated to every executor.

  Counter join_comparisons;   ///< Candidate pairs examined by joins.
  Counter records_processed;  ///< Records flowing through operators.

  Counter messages;    ///< Graph messages sent (aggregateMessages).
  Counter supersteps;  ///< Pregel/fixpoint iterations.

  SimTime simulated_ms;  ///< Critical-path time under the cost model.

  Histogram task_duration_ns;  ///< Distribution of per-task busy ns.
  Histogram task_records;      ///< Records per task (skew = max/mean).

  Metrics operator-(const Metrics& rhs) const;
  Metrics& operator+=(const Metrics& rhs);

  /// Multi-line human-readable dump.
  std::string ToString() const;

  /// Invokes fn(name, value) for every scalar the machine-readable surfaces
  /// export: each counter, simulated_ms (in ms), and summary statistics of
  /// each histogram.
  void ForEachNumericField(
      const std::function<void(const std::string&, double)>& fn) const;

  /// Invokes fn(name, histogram) for every histogram field — full bucket
  /// access for exposition formats that ForEachNumericField's summary
  /// statistics cannot serve (e.g. Prometheus `_bucket{le=...}` series).
  void ForEachHistogram(
      const std::function<void(const std::string&, const Histogram&)>& fn)
      const;
};

/// Cost model translating simulator events into simulated milliseconds.
/// A stage's duration is max over its tasks of
///   cpu_ns_per_record * records + net_ns_per_byte * remote_bytes,
/// mirroring a synchronous stage barrier on a homogeneous cluster.
struct CostModel {
  double cpu_ns_per_record = 50.0;
  double net_ns_per_byte = 10.0;
  double task_overhead_us = 100.0;  ///< Scheduling overhead per task.
};

}  // namespace rdfspark::spark

#endif  // RDFSPARK_SPARK_METRICS_H_
