#ifndef RDFSPARK_SPARK_METRICS_H_
#define RDFSPARK_SPARK_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace rdfspark::spark {

/// A counter with value semantics and relaxed-atomic updates. Partition
/// tasks run concurrently on the executor pool, so every counter the
/// compute lambdas touch must tolerate unsynchronized increments; copies
/// (metric snapshots, deltas) read a plain value. Relaxed ordering is
/// sufficient: counters are independent tallies, and the scheduler's
/// join barrier orders them against readers.
class Counter {
 public:
  constexpr Counter() noexcept = default;
  Counter(uint64_t v) noexcept : v_(v) {}
  Counter(const Counter& o) noexcept : v_(o.value()) {}
  Counter& operator=(const Counter& o) noexcept {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }
  Counter& operator=(uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  operator uint64_t() const noexcept { return value(); }
  uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  Counter& operator+=(uint64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  Counter& operator-=(uint64_t d) noexcept {
    v_.fetch_sub(d, std::memory_order_relaxed);
    return *this;
  }
  Counter& operator++() noexcept {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  uint64_t operator++(int) noexcept {
    return v_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Simulated time held as integer nanoseconds so that accumulation is
/// associative and commutative: the total is bit-identical no matter in
/// which order concurrent phases fold their maxima in. Reads convert to
/// milliseconds (the unit every report uses).
class SimTime {
 public:
  constexpr SimTime() noexcept = default;
  SimTime(double ms) noexcept : ns_(NanosFromMs(ms)) {}
  SimTime(const SimTime& o) noexcept : ns_(o.nanos()) {}
  SimTime& operator=(const SimTime& o) noexcept {
    ns_.store(o.nanos(), std::memory_order_relaxed);
    return *this;
  }
  SimTime& operator=(double ms) noexcept {
    ns_.store(NanosFromMs(ms), std::memory_order_relaxed);
    return *this;
  }

  operator double() const noexcept { return ms(); }
  double ms() const noexcept { return static_cast<double>(nanos()) / 1e6; }
  uint64_t nanos() const noexcept {
    return ns_.load(std::memory_order_relaxed);
  }

  void AddNanos(uint64_t d) noexcept {
    ns_.fetch_add(d, std::memory_order_relaxed);
  }
  SimTime& operator+=(const SimTime& o) noexcept {
    AddNanos(o.nanos());
    return *this;
  }
  SimTime& operator+=(double delta_ms) noexcept {
    AddNanos(NanosFromMs(delta_ms));
    return *this;
  }
  friend SimTime operator-(const SimTime& a, const SimTime& b) noexcept {
    SimTime d;
    uint64_t an = a.nanos(), bn = b.nanos();
    d.ns_.store(an > bn ? an - bn : 0, std::memory_order_relaxed);
    return d;
  }

  static uint64_t NanosFromMs(double ms) noexcept {
    return ms <= 0 ? 0 : static_cast<uint64_t>(ms * 1e6 + 0.5);
  }

 private:
  std::atomic<uint64_t> ns_{0};
};

/// Execution counters accumulated by the cluster simulator. Everything the
/// assessment benchmarks report (shuffle volume, locality, comparisons,
/// supersteps, simulated wall time) comes out of this struct; engines obtain
/// deltas by snapshotting before/after a query. Fields are relaxed atomics
/// (see Counter) because partition tasks update them concurrently.
struct Metrics {
  Counter jobs;    ///< Actions executed.
  Counter stages;  ///< Stages (shuffle boundaries + result stages).
  Counter tasks;   ///< Per-partition tasks launched.

  Counter shuffle_records;  ///< Records written through shuffles.
  Counter shuffle_bytes;    ///< Estimated bytes written through shuffles.
  Counter remote_shuffle_bytes;  ///< Subset crossing executor boundaries.

  Counter local_read_records;   ///< Partition reads served locally.
  Counter remote_read_records;  ///< Partition reads from other executors.

  Counter broadcast_bytes;  ///< Bytes replicated to every executor.

  Counter join_comparisons;   ///< Candidate pairs examined by joins.
  Counter records_processed;  ///< Records flowing through operators.

  Counter messages;    ///< Graph messages sent (aggregateMessages).
  Counter supersteps;  ///< Pregel/fixpoint iterations.

  SimTime simulated_ms;  ///< Critical-path time under the cost model.

  Metrics operator-(const Metrics& rhs) const;
  Metrics& operator+=(const Metrics& rhs);

  /// Multi-line human-readable dump.
  std::string ToString() const;
};

/// Cost model translating simulator events into simulated milliseconds.
/// A stage's duration is max over its tasks of
///   cpu_ns_per_record * records + net_ns_per_byte * remote_bytes,
/// mirroring a synchronous stage barrier on a homogeneous cluster.
struct CostModel {
  double cpu_ns_per_record = 50.0;
  double net_ns_per_byte = 10.0;
  double task_overhead_us = 100.0;  ///< Scheduling overhead per task.
};

}  // namespace rdfspark::spark

#endif  // RDFSPARK_SPARK_METRICS_H_
