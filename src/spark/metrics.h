#ifndef RDFSPARK_SPARK_METRICS_H_
#define RDFSPARK_SPARK_METRICS_H_

#include <cstdint>
#include <string>

namespace rdfspark::spark {

/// Execution counters accumulated by the cluster simulator. Everything the
/// assessment benchmarks report (shuffle volume, locality, comparisons,
/// supersteps, simulated wall time) comes out of this struct; engines obtain
/// deltas by snapshotting before/after a query.
struct Metrics {
  uint64_t jobs = 0;    ///< Actions executed.
  uint64_t stages = 0;  ///< Stages (shuffle boundaries + result stages).
  uint64_t tasks = 0;   ///< Per-partition tasks launched.

  uint64_t shuffle_records = 0;  ///< Records written through shuffles.
  uint64_t shuffle_bytes = 0;    ///< Estimated bytes written through shuffles.
  uint64_t remote_shuffle_bytes = 0;  ///< Subset crossing executor boundaries.

  uint64_t local_read_records = 0;   ///< Partition reads served locally.
  uint64_t remote_read_records = 0;  ///< Partition reads from other executors.

  uint64_t broadcast_bytes = 0;  ///< Bytes replicated to every executor.

  uint64_t join_comparisons = 0;  ///< Candidate pairs examined by joins.
  uint64_t records_processed = 0;  ///< Records flowing through operators.

  uint64_t messages = 0;    ///< Graph messages sent (aggregateMessages).
  uint64_t supersteps = 0;  ///< Pregel/fixpoint iterations.

  double simulated_ms = 0.0;  ///< Critical-path time under the cost model.

  Metrics operator-(const Metrics& rhs) const;
  Metrics& operator+=(const Metrics& rhs);

  /// Multi-line human-readable dump.
  std::string ToString() const;
};

/// Cost model translating simulator events into simulated milliseconds.
/// A stage's duration is max over its tasks of
///   cpu_ns_per_record * records + net_ns_per_byte * remote_bytes,
/// mirroring a synchronous stage barrier on a homogeneous cluster.
struct CostModel {
  double cpu_ns_per_record = 50.0;
  double net_ns_per_byte = 10.0;
  double task_overhead_us = 100.0;  ///< Scheduling overhead per task.
};

}  // namespace rdfspark::spark

#endif  // RDFSPARK_SPARK_METRICS_H_
