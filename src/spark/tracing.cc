#include "spark/tracing.h"

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "common/json.h"
#include "common/string_util.h"

namespace rdfspark::spark {

namespace {

/// Operator scopes open on this thread, innermost last. Shared across all
/// tracers/contexts: an OpStats identifies itself, no owner tag needed.
thread_local std::vector<std::shared_ptr<OpStats>> t_op_scopes;

/// Maps tracer id -> this thread's buffer. A plain linear scan: a thread
/// typically touches one or two live tracers. Entries of destroyed tracers
/// stay behind (compared only by id, never dereferenced) and are pruned
/// wholesale when the cache grows past a small bound.
struct TlsBufEntry {
  uint64_t tracer_id;
  void* buf;
};
thread_local std::vector<TlsBufEntry> t_tracer_bufs;

uint64_t NextTracerId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::string LaneName(int lane) {
  return lane < 0 ? std::string("driver") : "exec" + std::to_string(lane);
}

}  // namespace

std::shared_ptr<OpStats> CurrentOpStats() {
  for (auto it = t_op_scopes.rbegin(); it != t_op_scopes.rend(); ++it) {
    if (*it != nullptr) return *it;
  }
  return nullptr;
}

OpScopeGuard::OpScopeGuard(std::shared_ptr<OpStats> stats) {
  if (stats == nullptr) return;
  t_op_scopes.push_back(std::move(stats));
  pushed_ = true;
}

OpScopeGuard::~OpScopeGuard() {
  if (pushed_) t_op_scopes.pop_back();
}

const char* SpanKindName(SpanKind k) {
  switch (k) {
    case SpanKind::kJob:
      return "job";
    case SpanKind::kStage:
      return "stage";
    case SpanKind::kTask:
      return "task";
    case SpanKind::kShuffleWrite:
      return "shuffle-write";
    case SpanKind::kBroadcast:
      return "broadcast";
    case SpanKind::kSuperstep:
      return "superstep";
    case SpanKind::kServe:
      return "serve";
  }
  return "?";
}

Tracer::Tracer() : tracer_id_(NextTracerId()) {}

Tracer::~Tracer() = default;

Tracer::ThreadBuf* Tracer::BufForThisThread() {
  for (const auto& entry : t_tracer_bufs) {
    if (entry.tracer_id == tracer_id_) {
      return static_cast<ThreadBuf*>(entry.buf);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  bufs_.push_back(std::make_unique<ThreadBuf>());
  ThreadBuf* buf = bufs_.back().get();
  if (t_tracer_bufs.size() > 64) t_tracer_bufs.clear();
  t_tracer_bufs.push_back({tracer_id_, buf});
  return buf;
}

void Tracer::Record(SpanKind kind, std::string name, uint64_t ts_ns,
                    uint64_t dur_ns, int lane, uint64_t records,
                    uint64_t bytes) {
  if (!enabled()) return;
  BufForThisThread()->events.push_back(
      TraceEvent{kind, std::move(name), ts_ns, dur_ns, lane, records, bytes});
}

std::vector<TraceEvent> Tracer::Merged() const {
  std::vector<TraceEvent> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : bufs_) {
      all.insert(all.end(), buf->events.begin(), buf->events.end());
    }
  }
  // Total order over every field: the sorted sequence depends only on the
  // event multiset, not on which thread buffered what.
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return std::tie(a.ts_ns, a.lane, a.kind, a.name, a.dur_ns,
                              a.records, a.bytes) <
                     std::tie(b.ts_ns, b.lane, b.kind, b.name, b.dur_ns,
                              b.records, b.bytes);
            });
  return all;
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& buf : bufs_) n += buf->events.size();
  return n;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : bufs_) buf->events.clear();
}

std::string Tracer::ToChromeTraceJson() const {
  std::vector<TraceEvent> events = Merged();

  // Lanes present, mapped to Chrome "threads": tid 0 driver, tid N+1 exec N.
  std::vector<int> lanes = {-1};
  for (const auto& e : events) {
    if (std::find(lanes.begin(), lanes.end(), e.lane) == lanes.end()) {
      lanes.push_back(e.lane);
    }
  }
  std::sort(lanes.begin(), lanes.end());

  std::string out = "{\"traceEvents\":[\n";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"rdfspark simulated cluster\"}}";
  for (int lane : lanes) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
           std::to_string(lane + 1) + ",\"args\":{\"name\":\"" +
           JsonEscape(LaneName(lane)) + "\"}}";
  }
  char buf[64];
  for (const auto& e : events) {
    // Chrome expects microseconds; emit 3 decimals to keep ns precision.
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(e.ts_ns / 1000),
                  static_cast<unsigned long long>(e.ts_ns % 1000));
    out += ",\n{\"name\":\"" + JsonEscape(e.name) + "\",\"cat\":\"" +
           SpanKindName(e.kind) + "\",\"ph\":\"X\",\"ts\":" + buf;
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(e.dur_ns / 1000),
                  static_cast<unsigned long long>(e.dur_ns % 1000));
    out += ",\"dur\":";
    out += buf;
    out += ",\"pid\":0,\"tid\":" + std::to_string(e.lane + 1) +
           ",\"args\":{\"records\":" + std::to_string(e.records) +
           ",\"bytes\":" + std::to_string(e.bytes) + "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string Tracer::ToTimelineText() const {
  std::vector<TraceEvent> events = Merged();
  std::string out = "-- trace: " + std::to_string(events.size()) + " events\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%10s %10s  %-7s %-13s %-28s %10s %12s\n",
                "ts_ms", "dur_ms", "lane", "kind", "name", "records", "bytes");
  out += line;
  for (const auto& e : events) {
    std::snprintf(line, sizeof(line),
                  "%10.3f %10.3f  %-7s %-13s %-28s %10llu %12llu\n",
                  static_cast<double>(e.ts_ns) / 1e6,
                  static_cast<double>(e.dur_ns) / 1e6, LaneName(e.lane).c_str(),
                  SpanKindName(e.kind), e.name.c_str(),
                  static_cast<unsigned long long>(e.records),
                  static_cast<unsigned long long>(e.bytes));
    out += line;
  }
  return out;
}

}  // namespace rdfspark::spark
