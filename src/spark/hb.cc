#include "spark/hb.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "spark/context.h"
#include "spark/rdd.h"
#include "systems/plan/diagnostics.h"

// Link-layer note: this file lives in rdfspark_spark, which the systems
// library depends on — so it may only use the header-only parts of
// systems/plan/diagnostics.h (the Diagnostic struct and Severity enum),
// never FormatDiagnostic/SortDiagnostics from diagnostics.cc. The
// deterministic ordering below is therefore implemented locally (the same
// arrangement spark/lineage.cc uses).

namespace rdfspark::spark::hb {

using systems::plan::Diagnostic;
using systems::plan::Severity;

const char* ObjectKindName(ObjectKind kind) {
  switch (kind) {
    case ObjectKind::kCacheSlot:
      return "cache-slot";
    case ObjectKind::kCacheFlag:
      return "cache-flag";
    case ObjectKind::kShuffleBuffer:
      return "shuffle-buffer";
    case ObjectKind::kBatchBuffer:
      return "batch-buffer";
    case ObjectKind::kDictionary:
      return "dictionary";
    case ObjectKind::kPlanCache:
      return "plan-cache";
    case ObjectKind::kMetrics:
      return "metrics";
    case ObjectKind::kPoolInit:
      return "pool-init";
    case ObjectKind::kBroadcast:
      return "broadcast";
    case ObjectKind::kAccumulator:
      return "accumulator";
    case ObjectKind::kContainer:
      return "container";
  }
  return "unknown";
}

const char* AccessName(Access access) {
  switch (access) {
    case Access::kRead:
      return "read";
    case Access::kWrite:
      return "write";
    case Access::kAtomicRead:
      return "atomic read";
    case Access::kAtomicWrite:
      return "atomic write";
  }
  return "access";
}

std::string ObjectName(const ObjectId& obj) {
  switch (obj.kind) {
    case ObjectKind::kCacheSlot:
      return "rdd#" + std::to_string(obj.a) + ".slot[" +
             std::to_string(obj.b) + "]";
    case ObjectKind::kCacheFlag:
      return "rdd#" + std::to_string(obj.a) + ".cached";
    case ObjectKind::kShuffleBuffer:
      return "shuffle#" + std::to_string(obj.a);
    case ObjectKind::kBatchBuffer:
      return "batch#" + std::to_string(obj.a) + ".part[" +
             std::to_string(obj.b) + "]";
    case ObjectKind::kDictionary:
      return "dictionary#" + std::to_string(obj.a);
    case ObjectKind::kPlanCache:
      return "plan_cache#" + std::to_string(obj.a);
    case ObjectKind::kMetrics:
      return "metrics#" + std::to_string(obj.a);
    case ObjectKind::kPoolInit:
      return "executor_pool#" + std::to_string(obj.a);
    case ObjectKind::kBroadcast:
      return "broadcast#" + std::to_string(obj.a);
    case ObjectKind::kAccumulator:
      return "accumulator#" + std::to_string(obj.a);
    case ObjectKind::kContainer:
      return "container#" + std::to_string(obj.a);
  }
  return "object";
}

namespace {

using ObjKey = std::tuple<uint8_t, int64_t, int64_t>;

ObjKey KeyOf(const ObjectId& obj) {
  return {static_cast<uint8_t>(obj.kind), obj.a, obj.b};
}

struct Event {
  ObjectId obj;
  Access access;
  const char* site;
  uint8_t flags;
  int segment;
  std::vector<uintptr_t> locks;  ///< Sorted lock ids held at the access.
};

struct ThreadBuf {
  std::mutex mu;
  std::vector<Event> events;
};

/// A logical execution segment: a maximal run of one thread's work with a
/// fixed set of incoming HB edges. `preds` always point at lower ids
/// (segments are appended in creation order), so the segment graph is a
/// DAG in topological order by construction.
///
/// Segments are materialized LAZILY: a task that records no event never
/// allocates one (its fork/join structure contracts to nothing), so window
/// size scales with the number of distinct logical accesses, not with how
/// many tasks the runtime spawned. SparkSQL-style batch plans run millions
/// of metric-only tasks per query; eager segments made those windows
/// quadratically unanalyzable.
struct Segment {
  std::vector<int> preds;
};

struct Batch {
  int parent = -1;             ///< Forking segment (-1: none materialized).
  std::vector<int> final_seg;  ///< Last segment per task; -1 = recorded
                               ///< nothing, contracts out of the join.
};

struct GlobalState {
  std::mutex mu;
  std::vector<Segment> segments;
  std::vector<Batch> batches;
  std::map<ObjKey, int> publications;  ///< Object -> publishing segment.
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  int64_t window_id = 0;
};

GlobalState& G() {
  static GlobalState* g = new GlobalState;  // Immortal: threads may outlive
  return *g;                                // static destruction order.
}

/// Per-thread recording state, lazily re-initialized whenever the recorder
/// generation moved (i.e. after Reset).
struct ThreadState {
  uint64_t gen = 0;
  int segment = -1;  ///< -1: lazily materialized on first recorded fact.
  /// Predecessor a lazily materialized segment must link to: the segment
  /// the enclosing task forked from (-1 at a root). Keeping the pred here
  /// instead of materializing at EnterTask is what lets event-free tasks
  /// contract away while nested forks still inherit correct ordering.
  int pending_parent = -1;
  std::vector<int> parent_stack;  ///< Saved pending_parent of outer tasks.
  std::vector<uintptr_t> locks;
  /// Saved locksets of enclosing TaskScopes: a logical task starts with an
  /// empty lockset even when it runs inline on the driver thread (which may
  /// physically hold e.g. a shuffle mutex) — pooled execution would not
  /// inherit those locks, and logical facts must not depend on which
  /// execution mode ran.
  std::vector<std::vector<uintptr_t>> lock_stack;
  std::shared_ptr<ThreadBuf> buf;
  std::set<uint64_t> dedup;
  std::map<ObjKey, int> consumed;  ///< Publications already spliced in.
};

thread_local ThreadState t_state;

int NewSegmentLocked(std::vector<int> preds) {
  auto& g = G();
  g.segments.push_back(Segment{std::move(preds)});
  return static_cast<int>(g.segments.size()) - 1;
}

ThreadState& Tls(uint64_t gen) {
  ThreadState& s = t_state;
  if (s.gen != gen) {
    s.gen = gen;
    s.segment = -1;
    s.pending_parent = -1;
    s.parent_stack.clear();
    s.locks.clear();
    s.lock_stack.clear();
    s.dedup.clear();
    s.consumed.clear();
    s.buf = std::make_shared<ThreadBuf>();
    auto& g = G();
    std::lock_guard<std::mutex> lock(g.mu);
    g.bufs.push_back(s.buf);
  }
  return s;
}

int EnsureSegmentLocked(ThreadState& s) {
  if (s.segment >= 0) return s.segment;
  s.segment = s.pending_parent >= 0 ? NewSegmentLocked({s.pending_parent})
                                    : NewSegmentLocked({});
  return s.segment;
}

int EnsureSegment(ThreadState& s) {
  if (s.segment >= 0) return s.segment;
  std::lock_guard<std::mutex> lock(G().mu);
  return EnsureSegmentLocked(s);
}

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

bool IsWrite(Access a) {
  return a == Access::kWrite || a == Access::kAtomicWrite;
}
bool IsAtomic(Access a) {
  return a == Access::kAtomicRead || a == Access::kAtomicWrite;
}

bool LocksIntersect(const std::vector<uintptr_t>& a,
                    const std::vector<uintptr_t>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace

Recorder& Recorder::Get() {
  static Recorder* r = new Recorder;
  return *r;
}

void Recorder::Reset() {
  auto& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  g.segments.clear();
  g.batches.clear();
  g.publications.clear();
  g.bufs.clear();
  g.window_id = 0;
  gen_.fetch_add(1, std::memory_order_acq_rel);
}

int Recorder::BeginBatch(int count) {
  ThreadState& s = Tls(generation());
  // Do NOT materialize the forking segment here: if the driver (or the
  // enclosing task, for a nested fork) has recorded nothing, the tasks
  // lazily inherit its own pending parent instead — path contraction over
  // event-free frames.
  int parent = s.segment >= 0 ? s.segment : s.pending_parent;
  auto& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  int handle = static_cast<int>(g.batches.size());
  Batch batch;
  batch.parent = parent;
  batch.final_seg.assign(static_cast<size_t>(count), -1);
  g.batches.push_back(std::move(batch));
  return handle;
}

int Recorder::EnterTask(int batch, uint64_t gen, int index) {
  if (gen != generation()) return -1;
  ThreadState& s = Tls(gen);
  int save = s.segment;
  int parent = -1;
  {
    auto& g = G();
    std::lock_guard<std::mutex> lock(g.mu);
    if (batch < 0 || batch >= static_cast<int>(g.batches.size())) return save;
    const auto& b = g.batches[static_cast<size_t>(batch)];
    if (index < 0 || index >= static_cast<int>(b.final_seg.size())) {
      return save;
    }
    parent = b.parent;
  }
  s.parent_stack.push_back(s.pending_parent);
  s.pending_parent = parent;
  s.segment = -1;  // Materialized (with pred = parent) on first event.
  s.lock_stack.push_back(std::move(s.locks));
  s.locks.clear();
  s.consumed.clear();
  return save;
}

void Recorder::ExitTask(int batch, uint64_t gen, int index,
                        int restore_segment) {
  if (gen != generation()) return;
  ThreadState& s = Tls(gen);
  {
    auto& g = G();
    std::lock_guard<std::mutex> lock(g.mu);
    if (batch >= 0 && batch < static_cast<int>(g.batches.size())) {
      auto& b = g.batches[static_cast<size_t>(batch)];
      if (index >= 0 && index < static_cast<int>(b.final_seg.size()) &&
          s.segment >= 0) {
        b.final_seg[static_cast<size_t>(index)] = s.segment;
      }
    }
  }
  s.segment = restore_segment;
  if (!s.parent_stack.empty()) {
    s.pending_parent = s.parent_stack.back();
    s.parent_stack.pop_back();
  } else {
    s.pending_parent = -1;
  }
  if (!s.lock_stack.empty()) {
    s.locks = std::move(s.lock_stack.back());
    s.lock_stack.pop_back();
  }
  s.consumed.clear();
}

void Recorder::EndBatch(int batch, uint64_t gen) {
  if (gen != generation()) return;
  ThreadState& s = Tls(gen);
  auto& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  if (batch < 0 || batch >= static_cast<int>(g.batches.size())) return;
  const auto& b = g.batches[static_cast<size_t>(batch)];
  // The join succeeds every task that materialized a segment plus the
  // driver's *current* segment (it may have advanced past `parent` via a
  // Consume splice since the fork). A batch where no task recorded
  // anything contracts away entirely: the driver keeps its segment and its
  // consumed-publication cache stays valid.
  std::vector<int> preds;
  for (int f : b.final_seg) {
    if (f >= 0) preds.push_back(f);
  }
  if (preds.empty()) return;
  int cur = s.segment >= 0 ? s.segment : b.parent;
  if (cur >= 0) preds.push_back(cur);
  s.segment = NewSegmentLocked(std::move(preds));
  s.consumed.clear();
}

int Recorder::BeginRoot() {
  ThreadState& s = Tls(generation());
  int save = s.segment;
  {
    std::lock_guard<std::mutex> lock(G().mu);
    s.segment = NewSegmentLocked({});
  }
  s.consumed.clear();
  return save;
}

void Recorder::EndRoot(int restore_segment) {
  ThreadState& s = Tls(generation());
  s.segment = restore_segment;
  s.consumed.clear();
}

void Recorder::LockAcquired(uintptr_t lock_id) {
  Tls(generation()).locks.push_back(lock_id);
}

void Recorder::LockReleased(uintptr_t lock_id) {
  auto& locks = Tls(generation()).locks;
  for (size_t i = locks.size(); i-- > 0;) {
    if (locks[i] == lock_id) {
      locks.erase(locks.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

void Recorder::Publish(const ObjectId& obj) {
  ThreadState& s = Tls(generation());
  int seg = EnsureSegment(s);
  auto& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  g.publications[KeyOf(obj)] = seg;
}

void Recorder::Consume(const ObjectId& obj) {
  ThreadState& s = Tls(generation());
  auto& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  auto it = g.publications.find(KeyOf(obj));
  if (it == g.publications.end()) return;  // RC002 territory.
  int pub_seg = it->second;
  auto seen = s.consumed.find(KeyOf(obj));
  if (seen != s.consumed.end() && seen->second == pub_seg) return;
  int cur = EnsureSegmentLocked(s);
  if (cur != pub_seg) {
    s.segment = NewSegmentLocked({cur, pub_seg});
  } else {
    s.segment = cur;
  }
  s.consumed[KeyOf(obj)] = pub_seg;
}

void Recorder::Record(const ObjectId& obj, Access access, const char* site,
                      uint8_t flags) {
  ThreadState& s = Tls(generation());
  // A commutative atomic merge (metrics counters, relaxed accumulators)
  // can never contribute to a finding: RC skips atomic/atomic pairs,
  // DT002 requires a non-commutative operator, and DT001 exempts
  // commutative pairs (their result is completion-order independent by
  // definition). Record it once per (object, site) per thread —
  // segment-free — so a plan that charges one counter per task does not
  // materialize millions of task segments.
  bool inert = IsAtomic(access) && (flags & kSiteMerge) != 0 &&
               (flags & kSiteCommutative) != 0;
  int seg = inert ? -1 : EnsureSegment(s);
  std::vector<uintptr_t> locks;
  if (!inert) {
    locks = s.locks;
    std::sort(locks.begin(), locks.end());
    locks.erase(std::unique(locks.begin(), locks.end()), locks.end());
  }
  uint64_t h = Mix(0, static_cast<uint64_t>(obj.kind));
  h = Mix(h, static_cast<uint64_t>(obj.a));
  h = Mix(h, static_cast<uint64_t>(obj.b));
  h = Mix(h, static_cast<uint64_t>(access));
  h = Mix(h, reinterpret_cast<uintptr_t>(site));
  h = Mix(h, flags);
  h = Mix(h, static_cast<uint64_t>(seg));
  for (uintptr_t l : locks) h = Mix(h, l);
  if (!s.dedup.insert(h).second) return;  // Same logical access, seen.
  std::lock_guard<std::mutex> lock(s.buf->mu);
  s.buf->events.push_back(
      Event{obj, access, site, flags, seg, std::move(locks)});
}

int64_t Recorder::NextStableId() {
  static std::atomic<int64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

int64_t Recorder::NextWindowId() {
  auto& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  return ++g.window_id;
}

size_t Recorder::SegmentCountForTest() {
  auto& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.segments.size();
}

size_t Recorder::EventCountForTest() {
  auto& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  size_t n = 0;
  for (const auto& buf : g.bufs) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

namespace {

/// Reachability over the segment DAG, restricted to the segments the rule
/// passes will actually query (those carrying a deduplicated event). One
/// bitset row per segment but only one COLUMN per queried segment, so
/// memory is n_segments * n_event_segments / 8 bytes instead of n^2/8 —
/// lazily materialized segments already keep n itself proportional to the
/// number of distinct logical accesses. preds < id always holds, so one
/// forward pass closes the relation.
class Reachability {
 public:
  Reachability(const std::vector<Segment>& segments,
               const std::set<int>& query_segments) {
    int m = 0;
    for (int sid : query_segments) {
      if (sid >= 0 && sid < static_cast<int>(segments.size())) {
        col_.emplace(sid, m++);
      }
    }
    words_ = (static_cast<size_t>(m) + 63) / 64;
    if (words_ == 0) return;
    size_t n = segments.size();
    bits_.assign(n * words_, 0);
    for (size_t i = 0; i < n; ++i) {
      uint64_t* row = &bits_[i * words_];
      for (int p : segments[i].preds) {
        auto it = col_.find(p);
        if (it != col_.end()) {
          auto c = static_cast<size_t>(it->second);
          row[c / 64] |= uint64_t{1} << (c % 64);
        }
        const uint64_t* prow = &bits_[static_cast<size_t>(p) * words_];
        for (size_t w = 0; w < words_; ++w) row[w] |= prow[w];
      }
    }
  }

  /// True when `a` happens-before `b` or vice versa (or same segment).
  /// Segment -1 (an inert, segment-free event) is never ordered.
  bool OrderedEither(int a, int b) const {
    if (a == b) return true;
    if (a < 0 || b < 0) return false;
    return Reaches(a, b) || Reaches(b, a);
  }

 private:
  bool Reaches(int anc, int seg) const {
    auto it = col_.find(anc);
    if (it == col_.end()) return false;
    auto c = static_cast<size_t>(it->second);
    return (bits_[static_cast<size_t>(seg) * words_ + c / 64] >> (c % 64)) &
           1;
  }

  std::map<int, int> col_;
  size_t words_ = 0;
  std::vector<uint64_t> bits_;
};

/// Canonical "x at A vs y at B" fragment: the two sides sorted so the text
/// never depends on enumeration order.
std::string PairText(const Event& a, const Event& b) {
  std::string site_a = a.site;
  std::string site_b = b.site;
  std::string acc_a = AccessName(a.access);
  std::string acc_b = AccessName(b.access);
  if (std::tie(site_b, acc_b) < std::tie(site_a, acc_a)) {
    std::swap(site_a, site_b);
    std::swap(acc_a, acc_b);
  }
  return acc_a + " at " + site_a + " vs " + acc_b + " at " + site_b;
}

bool IsPublicationKind(ObjectKind kind) {
  return kind == ObjectKind::kShuffleBuffer ||
         kind == ObjectKind::kBroadcast || kind == ObjectKind::kPoolInit ||
         kind == ObjectKind::kBatchBuffer;
}

}  // namespace

std::vector<Diagnostic> Recorder::Analyze() {
  std::vector<Event> events;
  std::vector<Segment> segments;
  std::map<ObjKey, int> publications;
  {
    auto& g = G();
    std::lock_guard<std::mutex> lock(g.mu);
    segments = g.segments;
    publications = g.publications;
    for (const auto& buf : g.bufs) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      events.insert(events.end(), buf->events.begin(), buf->events.end());
    }
  }

  // Group by object, then re-deduplicate by *content* (per-thread dedup
  // keys on the site pointer; two threads at one site produce one logical
  // event here, keeping verdicts independent of how many threads ran).
  std::map<ObjKey, std::vector<Event>> by_object;
  std::set<int> event_segments;
  {
    std::set<std::tuple<ObjKey, uint8_t, std::string, uint8_t, int,
                        std::vector<uintptr_t>>>
        seen;
    for (const Event& e : events) {
      if (seen
              .insert({KeyOf(e.obj), static_cast<uint8_t>(e.access), e.site,
                       e.flags, e.segment, e.locks})
              .second) {
        by_object[KeyOf(e.obj)].push_back(e);
        event_segments.insert(e.segment);
      }
    }
  }

  Reachability reach(segments, event_segments);

  // Findings keyed by (rule, object, message): one finding per logical
  // defect no matter how many segment pairs exhibit it.
  std::map<std::tuple<std::string, std::string, std::string>, Diagnostic>
      findings;
  auto emit = [&findings](Severity severity, const char* rule,
                          std::string path, std::string message,
                          std::string hint) {
    auto key = std::make_tuple(std::string(rule), path, message);
    findings.emplace(std::move(key),
                     Diagnostic{severity, rule, std::move(path),
                                std::move(message), std::move(hint)});
  };

  for (const auto& [key, evs] : by_object) {
    const ObjectId& obj = evs.front().obj;
    std::string path = ObjectName(obj);
    bool published = publications.contains(key);

    // ---- RC pass: conflicting access pairs unordered by HB. ----
    // Accumulators and containers carry order semantics, not exclusion
    // semantics; they are judged by the DT pass below instead.
    bool rc_eligible = obj.kind != ObjectKind::kAccumulator &&
                       obj.kind != ObjectKind::kContainer;
    for (size_t i = 0; rc_eligible && i < evs.size(); ++i) {
      for (size_t j = i + 1; j < evs.size(); ++j) {
        const Event& a = evs[i];
        const Event& b = evs[j];
        if (!IsWrite(a.access) && !IsWrite(b.access)) continue;
        if (IsAtomic(a.access) && IsAtomic(b.access)) continue;
        if (LocksIntersect(a.locks, b.locks)) continue;
        if (reach.OrderedEither(a.segment, b.segment)) continue;
        bool eviction = ((a.flags | b.flags) & kSiteEviction) != 0;
        bool cacheish = obj.kind == ObjectKind::kCacheSlot ||
                        obj.kind == ObjectKind::kCacheFlag;
        if (cacheish && eviction) {
          emit(Severity::kError, "RC003", path,
               "cache eviction can interleave with pooled access: " +
                   PairText(a, b),
               "evict under the partition slot lock and keep the persist "
               "flag atomic, or quiesce tasks before unpersisting");
        } else if (IsPublicationKind(obj.kind) || published) {
          emit(Severity::kError, "RC002", path,
               "publication object accessed without its barrier: " +
                   PairText(a, b),
               "route readers through the publication barrier (shuffle "
               "materialization, broadcast, Freeze, call_once) before they "
               "touch the published state");
        } else {
          emit(Severity::kError, "RC001", path,
               "unsynchronized conflicting accesses: " + PairText(a, b),
               "order the accesses with a fork/join edge, a publication "
               "barrier, or a common lock");
        }
      }
    }

    // ---- DT pass: order-dependence even when access is synchronized. ----
    if (obj.kind == ObjectKind::kAccumulator) {
      // Locks give atomicity, not order: any two writes from unordered
      // segments leave the final value schedule-dependent — unless both
      // sides declare a commutative merge, which cannot observe order.
      for (size_t i = 0; i < evs.size(); ++i) {
        for (size_t j = i + 1; j < evs.size(); ++j) {
          const Event& a = evs[i];
          const Event& b = evs[j];
          if (!IsWrite(a.access) || !IsWrite(b.access)) continue;
          if ((a.flags & kSiteCommutative) && (b.flags & kSiteCommutative)) {
            continue;
          }
          if (reach.OrderedEither(a.segment, b.segment)) continue;
          emit(Severity::kError, "DT001", path,
               "accumulator written by logically concurrent tasks; the "
               "final value depends on completion order: " + PairText(a, b),
               "collect per-task partials and merge them in "
               "partition-index order on the driver");
        }
      }
    }
    for (size_t i = 0; i < evs.size(); ++i) {
      for (size_t j = i + 1; j < evs.size(); ++j) {
        const Event& a = evs[i];
        const Event& b = evs[j];
        bool both_merge = (a.flags & kSiteMerge) && (b.flags & kSiteMerge);
        bool commutative =
            (a.flags & kSiteCommutative) && (b.flags & kSiteCommutative);
        if (!both_merge || commutative) continue;
        if (reach.OrderedEither(a.segment, b.segment)) continue;
        emit(Severity::kWarn, "DT002", path,
             "non-commutative merge runs across unordered partitions: " +
                 PairText(a, b),
             "make the merge operator commutative or apply partials in "
             "partition-index order");
      }
    }
    if (obj.kind == ObjectKind::kContainer) {
      bool unordered_writes = false;
      std::string wpair;
      for (size_t i = 0; i < evs.size() && !unordered_writes; ++i) {
        for (size_t j = i + 1; j < evs.size(); ++j) {
          const Event& a = evs[i];
          const Event& b = evs[j];
          if (!IsWrite(a.access) || !IsWrite(b.access)) continue;
          if (reach.OrderedEither(a.segment, b.segment)) continue;
          unordered_writes = true;
          wpair = PairText(a, b);
          break;
        }
      }
      if (unordered_writes) {
        for (const Event& e : evs) {
          if ((e.flags & kSiteIteration) == 0) continue;
          emit(Severity::kWarn, "DT003", path,
               std::string("iteration at ") + e.site +
                   " over an unordered container crosses a result/trace "
                   "boundary while inserts are unordered (" +
                   wpair + ")",
               "sort the entries before emitting or collect into an "
               "order-preserving container");
        }
      }
    }
  }

  std::vector<Diagnostic> out;
  out.reserve(findings.size());
  for (auto& [key, diag] : findings) out.push_back(std::move(diag));
  return out;  // Already sorted by (rule, object, message) via the map.
}

std::vector<Diagnostic> ScopedRaceCheck::Finish() {
  if (!owner_ || finished_) return {};
  finished_ = true;
  auto out = Recorder::Get().Analyze();
  Recorder::Get().Disable();
  return out;
}

void RunRuntimeProbe(SparkContext* sc) {
  // 1. Sibling tasks pull the same parent partitions (Union of one RDD):
  //    clean builds suppress the conflicts via the per-slot lock; the
  //    RDFSPARK_MUTATE_NO_SLOT_LOCK build fires RC001 here.
  std::vector<int> data(256);
  std::iota(data.begin(), data.end(), 0);
  auto base = Parallelize(sc, data, 4);
  base.Union(base).Count();

  // 2. Shuffle materialization + TakeBucket: exercises the publication
  //    barrier (publish at materialize, consume at read).
  auto keyed =
      base.KeyBy([](const int& x) { return static_cast<uint64_t>(x % 16); });
  keyed.PartitionByKey(4).Count();

  // 3. Broadcast publication and pooled reads.
  std::unordered_map<uint64_t, std::vector<int>, ValueHasher> small;
  for (int i = 0; i < 16; ++i) {
    small[static_cast<uint64_t>(i)] = {i};
  }
  keyed.BroadcastHashJoin(small).Count();

  // 4. Uncache racing pooled reads, the RC003 shape: one logical task
  //    unpersists while siblings recompute partitions. Clean builds stay
  //    silent (atomic persist flag + slot locks); either mutation makes
  //    this fire RC003 — deterministically, because the tasks are
  //    logically concurrent even under --threads=1.
  auto victim = base.Map([](const int& x) { return x + 1; });
  victim.Count();
  auto* node = victim.node().get();
  int np = node->num_partitions();
  sc->RunParallel(np + 1, [node](int i) {
    if (i == 0) {
      node->Uncache();
    } else {
      node->ComputePartition(i - 1);
    }
  });
}

}  // namespace rdfspark::spark::hb
