#ifndef RDFSPARK_SPARK_VALUE_HASH_H_
#define RDFSPARK_SPARK_VALUE_HASH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/hash.h"

namespace rdfspark::spark {

/// Deterministic, platform-independent hashing of record keys. Partition
/// placement — and therefore every locality metric in the benchmarks — is a
/// pure function of these hashes, so std::hash (which is unspecified across
/// standard libraries) is deliberately not used.
///
/// All overloads are declared before any definition so that composite types
/// (pairs of vectors, tuples of optionals, ...) resolve regardless of
/// nesting order.

inline uint64_t HashValue(const std::string& s);
template <typename T>
  requires std::is_integral_v<T> || std::is_enum_v<T>
uint64_t HashValue(T v);
inline uint64_t HashValue(double d);
template <typename A, typename B>
uint64_t HashValue(const std::pair<A, B>& p);
template <typename... Ts>
uint64_t HashValue(const std::tuple<Ts...>& t);
template <typename T>
uint64_t HashValue(const std::optional<T>& o);
template <typename T>
uint64_t HashValue(const std::vector<T>& v);

inline uint64_t HashValue(const std::string& s) { return Fnv1a64(s); }

template <typename T>
  requires std::is_integral_v<T> || std::is_enum_v<T>
uint64_t HashValue(T v) {
  return MixHash64(static_cast<uint64_t>(v));
}

inline uint64_t HashValue(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  return MixHash64(bits);
}

template <typename A, typename B>
uint64_t HashValue(const std::pair<A, B>& p) {
  return CombineHash64(HashValue(p.first), HashValue(p.second));
}

template <typename... Ts>
uint64_t HashValue(const std::tuple<Ts...>& t) {
  uint64_t h = 0x12345678abcdef01ULL;
  std::apply(
      [&h](const Ts&... xs) { ((h = CombineHash64(h, HashValue(xs))), ...); },
      t);
  return h;
}

template <typename T>
uint64_t HashValue(const std::optional<T>& o) {
  return o ? CombineHash64(1, HashValue(*o)) : 0x9e3779b97f4a7c15ULL;
}

template <typename T>
uint64_t HashValue(const std::vector<T>& v) {
  uint64_t h = 0xabcdef0123456789ULL;
  for (const auto& x : v) h = CombineHash64(h, HashValue(x));
  return h;
}

/// Functor adapter so unordered containers can key on arbitrary record types
/// through the deterministic HashValue overload set (ADL picks up overloads
/// for user types such as rdf::EncodedTriple).
struct ValueHasher {
  template <typename T>
  size_t operator()(const T& v) const {
    return static_cast<size_t>(HashValue(v));
  }
};

}  // namespace rdfspark::spark

#endif  // RDFSPARK_SPARK_VALUE_HASH_H_
