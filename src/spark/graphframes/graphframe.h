#ifndef RDFSPARK_SPARK_GRAPHFRAMES_GRAPHFRAME_H_
#define RDFSPARK_SPARK_GRAPHFRAMES_GRAPHFRAME_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "spark/sql/dataframe.h"

namespace rdfspark::spark::graphframes {

/// One "(a)-[e]->(b)" element of a motif pattern.
struct MotifEdge {
  std::string src;   // vertex name; empty = anonymous
  std::string edge;  // edge name; empty = anonymous
  std::string dst;
};

/// Parses a motif pattern: semicolon-separated "(a)-[e]->(b)" elements
/// (names optional: "()-[]->(b)" is valid).
Result<std::vector<MotifEdge>> ParseMotif(std::string_view pattern);

/// A graph represented as two DataFrames — the GraphFrames model [9]: a
/// vertex table (column "id" + attributes) and an edge table (columns
/// "src", "dst" + attributes). "It supports also queries over graphs":
/// FindMotif runs the pattern via DataFrame joins, inheriting the SQL
/// layer's join strategies and metrics.
class GraphFrame {
 public:
  GraphFrame() = default;
  GraphFrame(sql::DataFrame vertices, sql::DataFrame edges)
      : vertices_(std::move(vertices)), edges_(std::move(edges)) {}

  const sql::DataFrame& vertices() const { return vertices_; }
  const sql::DataFrame& edges() const { return edges_; }

  /// Predicates applied *during* matching rather than on the final result:
  /// `edge_predicates[e]` filters element e's edge scan (columns already
  /// renamed, e.g. Col("e.rel")); `vertex_predicates[v]` fires as soon as
  /// column v exists. This keeps labeled-motif searches from exploding
  /// through unconstrained intermediate joins.
  struct MotifOptions {
    std::unordered_map<std::string, sql::Expr> edge_predicates;
    std::unordered_map<std::string, sql::Expr> vertex_predicates;
  };

  /// Structural pattern matching. Output columns: "<v>" (vertex id) for
  /// every named vertex, "<v>.<attr>" for its vertex attributes, and
  /// "<e>.<attr>" for every named edge's attributes.
  Result<sql::DataFrame> FindMotif(std::string_view pattern) const {
    return FindMotif(pattern, MotifOptions());
  }
  Result<sql::DataFrame> FindMotif(std::string_view pattern,
                                   const MotifOptions& options) const;

  /// Returns a new GraphFrame with filtered edges / vertices.
  GraphFrame FilterEdges(const sql::Expr& predicate) const {
    return GraphFrame(vertices_, edges_.Filter(predicate));
  }
  GraphFrame FilterVertices(const sql::Expr& predicate) const {
    return GraphFrame(vertices_.Filter(predicate), edges_);
  }

  /// (id, inDegree) / (id, outDegree) tables.
  sql::DataFrame InDegrees() const;
  sql::DataFrame OutDegrees() const;

  /// Breadth-first search (GraphFrames' bfs): shortest directed paths from
  /// vertices satisfying `from` to vertices satisfying `to`, up to
  /// `max_hops` edges. Returns a DataFrame with columns
  /// "v0", "e0.<attr>", "v1", ..., "v<k>" for the first hop count k at
  /// which any path exists (empty frame if none within the bound).
  /// Predicates reference the endpoint columns ("v0", "v<k>") and vertex
  /// attributes ("v0.<attr>").
  Result<sql::DataFrame> Bfs(const sql::Expr& from, const sql::Expr& to,
                             int max_hops) const;

 private:
  sql::DataFrame vertices_;
  sql::DataFrame edges_;
};

}  // namespace rdfspark::spark::graphframes

#endif  // RDFSPARK_SPARK_GRAPHFRAMES_GRAPHFRAME_H_
