#include "spark/graphframes/graphframe.h"

#include <algorithm>

#include "common/string_util.h"

namespace rdfspark::spark::graphframes {

using sql::AggOp;
using sql::AggSpec;
using sql::Col;
using sql::DataFrame;
using sql::Expr;

Result<std::vector<MotifEdge>> ParseMotif(std::string_view pattern) {
  std::vector<MotifEdge> out;
  for (const std::string& raw : SplitString(pattern, ';')) {
    std::string_view element = TrimWhitespace(raw);
    if (element.empty()) continue;
    // Expected: (name)-[name]->(name), names optional.
    auto expect = [&](size_t pos, char c) {
      return pos < element.size() && element[pos] == c;
    };
    size_t i = 0;
    auto parse_delim = [&](char open, char close,
                           std::string* name) -> Status {
      if (!expect(i, open)) {
        return Status::ParseError("motif: expected '" + std::string(1, open) +
                                  "' in '" + std::string(element) + "'");
      }
      ++i;
      size_t end = element.find(close, i);
      if (end == std::string_view::npos) {
        return Status::ParseError("motif: missing '" + std::string(1, close) +
                                  "'");
      }
      *name = std::string(TrimWhitespace(element.substr(i, end - i)));
      i = end + 1;
      return Status::OK();
    };
    MotifEdge edge;
    RDFSPARK_RETURN_NOT_OK(parse_delim('(', ')', &edge.src));
    if (!expect(i, '-')) return Status::ParseError("motif: expected '-'");
    ++i;
    RDFSPARK_RETURN_NOT_OK(parse_delim('[', ']', &edge.edge));
    if (!(expect(i, '-') && expect(i + 1, '>'))) {
      return Status::ParseError("motif: expected '->'");
    }
    i += 2;
    RDFSPARK_RETURN_NOT_OK(parse_delim('(', ')', &edge.dst));
    if (i != element.size()) {
      return Status::ParseError("motif: trailing characters in '" +
                                std::string(element) + "'");
    }
    out.push_back(std::move(edge));
  }
  if (out.empty()) return Status::ParseError("motif: empty pattern");
  return out;
}

namespace {

/// Natural join on shared column names (the right copies are dropped).
DataFrame NaturalJoin(const DataFrame& left, const DataFrame& right) {
  std::vector<std::string> shared;
  for (const auto& f : right.schema().fields()) {
    if (left.schema().Index(f.name) >= 0) shared.push_back(f.name);
  }
  if (shared.empty()) return left.CrossJoin(right);
  // Rename shared right columns to temporaries, join, drop them.
  std::vector<std::string> rnames;
  for (const auto& f : right.schema().fields()) {
    bool is_shared =
        std::find(shared.begin(), shared.end(), f.name) != shared.end();
    rnames.push_back(is_shared ? "__rhs_" + f.name : f.name);
  }
  DataFrame renamed = right.Rename(rnames);
  std::vector<std::pair<std::string, std::string>> keys;
  for (const auto& c : shared) keys.emplace_back(c, "__rhs_" + c);
  DataFrame joined = left.Join(renamed, keys);
  std::vector<std::string> keep;
  for (const auto& f : joined.schema().fields()) {
    if (!StartsWith(f.name, "__rhs_")) keep.push_back(f.name);
  }
  return joined.Select(keep);
}

}  // namespace

Result<sql::DataFrame> GraphFrame::FindMotif(
    std::string_view pattern, const MotifOptions& options) const {
  RDFSPARK_ASSIGN_OR_RETURN(std::vector<MotifEdge> motif,
                            ParseMotif(pattern));
  int anon_counter = 0;
  DataFrame result;
  std::vector<std::string> named_vertices;
  std::vector<std::string> vertex_filters_applied;
  auto apply_vertex_predicates = [&](DataFrame df) {
    for (const auto& [vertex, predicate] : options.vertex_predicates) {
      if (std::find(vertex_filters_applied.begin(),
                    vertex_filters_applied.end(),
                    vertex) != vertex_filters_applied.end()) {
        continue;
      }
      if (df.schema().Index(vertex) < 0) continue;
      df = df.Filter(predicate);
      vertex_filters_applied.push_back(vertex);
    }
    return df;
  };
  for (const MotifEdge& m : motif) {
    std::string src = m.src.empty()
                          ? "__anon" + std::to_string(anon_counter++)
                          : m.src;
    std::string dst = m.dst.empty()
                          ? "__anon" + std::to_string(anon_counter++)
                          : m.dst;
    for (const auto& v : {m.src, m.dst}) {
      if (!v.empty() && std::find(named_vertices.begin(),
                                  named_vertices.end(),
                                  v) == named_vertices.end()) {
        named_vertices.push_back(v);
      }
    }
    // Rename edge columns: src -> <src>, dst -> <dst>, attr -> <e>.attr.
    std::vector<std::string> names;
    for (const auto& f : edges_.schema().fields()) {
      if (f.name == "src") {
        names.push_back(src);
      } else if (f.name == "dst") {
        names.push_back(dst);
      } else if (!m.edge.empty()) {
        names.push_back(m.edge + "." + f.name);
      } else {
        names.push_back("__anon" + std::to_string(anon_counter++) + "." +
                        f.name);
      }
    }
    DataFrame step = edges_.Rename(names);
    if (!m.edge.empty()) {
      auto it = options.edge_predicates.find(m.edge);
      if (it != options.edge_predicates.end()) {
        step = step.Filter(it->second);
      }
    }
    result = result.valid() ? NaturalJoin(result, step) : step;
    result = apply_vertex_predicates(result);
  }
  // Attach vertex attributes for named vertices.
  for (const auto& v : named_vertices) {
    std::vector<std::string> names;
    bool has_extra = false;
    for (const auto& f : vertices_.schema().fields()) {
      if (f.name == "id") {
        names.push_back(v);
      } else {
        names.push_back(v + "." + f.name);
        has_extra = true;
      }
    }
    if (!has_extra) continue;
    result = NaturalJoin(result, vertices_.Rename(names));
  }
  // Drop anonymous columns.
  std::vector<std::string> keep;
  for (const auto& f : result.schema().fields()) {
    if (!StartsWith(f.name, "__anon")) keep.push_back(f.name);
  }
  return result.Select(keep);
}

Result<sql::DataFrame> GraphFrame::Bfs(const sql::Expr& from,
                                       const sql::Expr& to,
                                       int max_hops) const {
  if (max_hops < 0) {
    return Status::InvalidArgument("max_hops must be >= 0");
  }
  // End-vertex ids as a single renamed column for hit-testing.
  DataFrame to_ids = vertices_.Filter(to).Select({"id"}).Rename({"__to"});

  // Start frontier: matching vertices with columns v0 (+ attributes).
  std::vector<std::string> start_names;
  for (const auto& f : vertices_.schema().fields()) {
    start_names.push_back(f.name == "id" ? "v0" : "v0." + f.name);
  }
  DataFrame paths = vertices_.Filter(from).Rename(start_names);

  for (int hop = 0; hop <= max_hops; ++hop) {
    std::string last = "v" + std::to_string(hop);
    // Hit test: any path ending in a `to` vertex?
    DataFrame hits = paths.Join(to_ids, {{last, "__to"}});
    if (hits.NumRows() > 0) {
      std::vector<std::string> keep;
      for (const auto& f : hits.schema().fields()) {
        if (f.name != "__to") keep.push_back(f.name);
      }
      return hits.Select(keep).Distinct();
    }
    if (hop == max_hops) break;
    // Extend every path by one edge.
    std::string next = "v" + std::to_string(hop + 1);
    std::vector<std::string> edge_names;
    for (const auto& f : edges_.schema().fields()) {
      if (f.name == "src") {
        edge_names.push_back("__src");
      } else if (f.name == "dst") {
        edge_names.push_back(next);
      } else {
        edge_names.push_back("e" + std::to_string(hop) + "." + f.name);
      }
    }
    paths = paths.Join(edges_.Rename(edge_names), {{last, "__src"}});
    std::vector<std::string> keep;
    for (const auto& f : paths.schema().fields()) {
      if (f.name != "__src") keep.push_back(f.name);
    }
    paths = paths.Select(keep);
    if (paths.NumRows() == 0) break;  // frontier died out
  }
  // No path: empty frame with the start schema.
  return vertices_.Filter(from).Rename(start_names).Limit(0);
}

sql::DataFrame GraphFrame::InDegrees() const {
  return edges_.GroupByAgg({"dst"},
                           {AggSpec{AggOp::kCount, "", "inDegree"}});
}

sql::DataFrame GraphFrame::OutDegrees() const {
  return edges_.GroupByAgg({"src"},
                           {AggSpec{AggOp::kCount, "", "outDegree"}});
}

}  // namespace rdfspark::spark::graphframes
