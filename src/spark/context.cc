#include "spark/context.h"

#include <algorithm>

#include "spark/scheduler.h"

namespace rdfspark::spark {

namespace {

/// One open phase on this thread. Frames for every live context share the
/// thread's stack; CurrentPhase scans for the innermost frame of its own
/// context. `owned` marks frames created by BeginPhase (popped and folded
/// by EndPhase) as opposed to frames propagated into pool workers by
/// RunParallel (popped when the task returns).
struct PhaseFrame {
  const SparkContext* ctx;
  SparkContext::Phase* phase;
  bool owned;
};

thread_local std::vector<PhaseFrame> t_phase_frames;

}  // namespace

SparkContext::Phase::Phase(int num_executors)
    : busy_ns(static_cast<size_t>(num_executors)) {
  Reset();
}

uint64_t SparkContext::Phase::MaxNanos() const {
  uint64_t max_ns = 0;
  for (const auto& ns : busy_ns) {
    max_ns = std::max(max_ns, ns.load(std::memory_order_relaxed));
  }
  return max_ns;
}

void SparkContext::Phase::Reset() {
  for (auto& ns : busy_ns) ns.store(0, std::memory_order_relaxed);
}

SparkContext::SparkContext(ClusterConfig config) : config_(config) {
  if (config_.num_executors < 1) config_.num_executors = 1;
  if (config_.default_parallelism < 1) {
    config_.default_parallelism = config_.num_executors;
  }
  root_phase_ = std::make_unique<Phase>(config_.num_executors);
}

SparkContext::~SparkContext() {
  // Drop any frames this context left on the calling thread's stack
  // (mismatched BeginPhase without EndPhase); erase so a later context
  // allocated at the same address cannot alias them.
  auto& frames = t_phase_frames;
  for (size_t i = frames.size(); i > 0; --i) {
    if (frames[i - 1].ctx == this) {
      if (frames[i - 1].owned) delete frames[i - 1].phase;
      frames.erase(frames.begin() + static_cast<ptrdiff_t>(i - 1));
    }
  }
}

SparkContext::Phase* SparkContext::CurrentPhase() const {
  for (auto it = t_phase_frames.rbegin(); it != t_phase_frames.rend(); ++it) {
    if (it->ctx == this) return it->phase;
  }
  return root_phase_.get();
}

void SparkContext::BeginPhase() {
  t_phase_frames.push_back({this, new Phase(config_.num_executors), true});
}

void SparkContext::EndPhase() {
  auto& frames = t_phase_frames;
  if (!frames.empty() && frames.back().ctx == this && frames.back().owned) {
    Phase* phase = frames.back().phase;
    frames.pop_back();
    metrics_.simulated_ms.AddNanos(phase->MaxNanos());
    delete phase;
  } else {
    // Unmatched EndPhase: fold whatever accumulated outside phases and
    // reset it (the seed's behaviour for an empty phase stack).
    metrics_.simulated_ms.AddNanos(root_phase_->MaxNanos());
    root_phase_->Reset();
  }
  ++metrics_.stages;
}

void SparkContext::ChargeCompute(int partition, uint64_t records) {
  metrics_.records_processed += records;
  CurrentPhase()->Add(
      ExecutorOf(partition),
      static_cast<uint64_t>(
          config_.cost.cpu_ns_per_record * static_cast<double>(records) +
          0.5));
}

void SparkContext::ChargeTask(int partition, uint64_t records,
                              uint64_t remote_bytes) {
  ++metrics_.tasks;
  metrics_.records_processed += records;
  double ns = config_.cost.task_overhead_us * 1e3;
  ns += config_.cost.cpu_ns_per_record * static_cast<double>(records);
  ns += config_.cost.net_ns_per_byte * static_cast<double>(remote_bytes);
  CurrentPhase()->Add(ExecutorOf(partition),
                      static_cast<uint64_t>(ns + 0.5));
}

void SparkContext::RunParallel(int count,
                               const std::function<void(int)>& fn) {
  if (count <= 0) return;
  int threads = config_.executor_threads > 0 ? config_.executor_threads
                                             : config_.num_executors;
  if (count == 1 || threads <= 1 || TaskScheduler::InWorkerThread()) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  if (!scheduler_) scheduler_ = std::make_unique<TaskScheduler>(threads);
  Phase* phase = CurrentPhase();
  scheduler_->ParallelFor(count, [this, phase, &fn](int i) {
    // Propagate the submitting thread's phase so task charges land in the
    // action's phase; popped even if fn throws.
    t_phase_frames.push_back({this, phase, false});
    struct FramePopper {
      ~FramePopper() { t_phase_frames.pop_back(); }
    } popper;
    fn(i);
  });
}

}  // namespace rdfspark::spark
