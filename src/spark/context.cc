#include "spark/context.h"

#include <algorithm>

namespace rdfspark::spark {

SparkContext::SparkContext(ClusterConfig config) : config_(config) {
  if (config_.num_executors < 1) config_.num_executors = 1;
  if (config_.default_parallelism < 1) {
    config_.default_parallelism = config_.num_executors;
  }
  executor_ns_.assign(config_.num_executors, 0.0);
}

void SparkContext::BeginPhase() {
  phase_stack_.push_back(executor_ns_);
  std::fill(executor_ns_.begin(), executor_ns_.end(), 0.0);
}

void SparkContext::EndPhase() {
  double max_ns = 0.0;
  for (double ns : executor_ns_) max_ns = std::max(max_ns, ns);
  metrics_.simulated_ms += max_ns / 1e6;
  ++metrics_.stages;
  if (!phase_stack_.empty()) {
    executor_ns_ = phase_stack_.back();
    phase_stack_.pop_back();
  } else {
    std::fill(executor_ns_.begin(), executor_ns_.end(), 0.0);
  }
}

void SparkContext::ChargeCompute(int partition, uint64_t records) {
  metrics_.records_processed += records;
  executor_ns_[ExecutorOf(partition)] +=
      config_.cost.cpu_ns_per_record * static_cast<double>(records);
}

void SparkContext::ChargeTask(int partition, uint64_t records,
                              uint64_t remote_bytes) {
  ++metrics_.tasks;
  metrics_.records_processed += records;
  double& ns = executor_ns_[ExecutorOf(partition)];
  ns += config_.cost.task_overhead_us * 1e3;
  ns += config_.cost.cpu_ns_per_record * static_cast<double>(records);
  ns += config_.cost.net_ns_per_byte * static_cast<double>(remote_bytes);
}

}  // namespace rdfspark::spark
