#include "spark/context.h"

#include <algorithm>

#include "spark/scheduler.h"

namespace rdfspark::spark {

namespace {

/// One open phase on this thread. Frames for every live context share the
/// thread's stack; CurrentPhase scans for the innermost frame of its own
/// context. `owned` marks frames created by BeginPhase (popped and folded
/// by EndPhase) as opposed to frames propagated into pool workers by
/// RunParallel (popped when the task returns).
struct PhaseFrame {
  const SparkContext* ctx;
  SparkContext::Phase* phase;
  bool owned;
};

thread_local std::vector<PhaseFrame> t_phase_frames;

}  // namespace

SparkContext::Phase::Phase(int num_executors)
    : busy_ns(static_cast<size_t>(num_executors)) {
  Reset();
}

uint64_t SparkContext::Phase::MaxNanos() const {
  uint64_t max_ns = 0;
  for (const auto& ns : busy_ns) {
    max_ns = std::max(max_ns, ns.load(std::memory_order_relaxed));
  }
  return max_ns;
}

void SparkContext::Phase::Reset() {
  for (auto& ns : busy_ns) ns.store(0, std::memory_order_relaxed);
}

SparkContext::SparkContext(ClusterConfig config) : config_(config) {
  if (config_.num_executors < 1) config_.num_executors = 1;
  if (config_.default_parallelism < 1) {
    config_.default_parallelism = config_.num_executors;
  }
  root_phase_ = std::make_unique<Phase>(config_.num_executors);
}

SparkContext::~SparkContext() {
  // Drop any frames this context left on the calling thread's stack
  // (mismatched BeginPhase without EndPhase); erase so a later context
  // allocated at the same address cannot alias them.
  auto& frames = t_phase_frames;
  for (size_t i = frames.size(); i > 0; --i) {
    if (frames[i - 1].ctx == this) {
      if (frames[i - 1].owned) delete frames[i - 1].phase;
      frames.erase(frames.begin() + static_cast<ptrdiff_t>(i - 1));
    }
  }
}

SparkContext::Phase* SparkContext::CurrentPhase() const {
  for (auto it = t_phase_frames.rbegin(); it != t_phase_frames.rend(); ++it) {
    if (it->ctx == this) return it->phase;
  }
  return root_phase_.get();
}

void SparkContext::BeginPhase() {
  Phase* phase = new Phase(config_.num_executors);
  phase->start_ns = metrics_.simulated_ms.nanos();
  t_phase_frames.push_back({this, phase, true});
}

void SparkContext::EndPhase() {
  auto& frames = t_phase_frames;
  uint64_t start_ns = 0;
  uint64_t max_ns = 0;
  if (!frames.empty() && frames.back().ctx == this && frames.back().owned) {
    Phase* phase = frames.back().phase;
    frames.pop_back();
    start_ns = phase->start_ns;
    max_ns = phase->MaxNanos();
    metrics_.simulated_ms.AddNanos(max_ns);
    delete phase;
  } else {
    // Unmatched EndPhase: fold whatever accumulated outside phases and
    // reset it (the seed's behaviour for an empty phase stack).
    start_ns = root_phase_->start_ns;
    max_ns = root_phase_->MaxNanos();
    metrics_.simulated_ms.AddNanos(max_ns);
    root_phase_->Reset();
    root_phase_->start_ns = metrics_.simulated_ms.nanos();
  }
  uint64_t stage = ++metrics_.stages;
  if (tracer_.enabled()) {
    tracer_.Record(SpanKind::kStage, "stage#" + std::to_string(stage),
                   start_ns, max_ns, /*lane=*/-1);
  }
}

void SparkContext::ChargeCompute(int partition, uint64_t records) {
  metrics_.records_processed += records;
  uint64_t ns = static_cast<uint64_t>(
      config_.cost.cpu_ns_per_record * static_cast<double>(records) + 0.5);
  CurrentPhase()->Add(ExecutorOf(partition), ns);
  if (auto op = CurrentOpStats()) {
    op->records_in += records;
    op->busy_ns += ns;
  }
}

void SparkContext::ChargeTask(int partition, uint64_t records,
                              uint64_t remote_bytes) {
  // Determinism sub-pass evidence: every metric fold is a commutative
  // atomic merge, so concurrent tasks can never make totals depend on
  // completion order (DT002 would flag a non-commutative one).
  hb::RecordMerge(hb::MetricsObject(HbId()), "ChargeTask",
                  /*commutative=*/true);
  ++metrics_.tasks;
  metrics_.records_processed += records;
  double cost = config_.cost.task_overhead_us * 1e3;
  cost += config_.cost.cpu_ns_per_record * static_cast<double>(records);
  cost += config_.cost.net_ns_per_byte * static_cast<double>(remote_bytes);
  uint64_t ns = static_cast<uint64_t>(cost + 0.5);
  Phase* phase = CurrentPhase();
  int executor = ExecutorOf(partition);
  uint64_t busy_before = phase->Add(executor, ns);
  metrics_.task_duration_ns.Record(ns);
  metrics_.task_records.Record(records);
  if (auto op = CurrentOpStats()) {
    ++op->tasks;
    op->records_in += records;
    op->busy_ns += ns;
  }
  if (tracer_.enabled()) {
    tracer_.Record(SpanKind::kTask,
                   "task p" + std::to_string(partition),
                   phase->start_ns + busy_before, ns, executor, records,
                   remote_bytes);
  }
}

void SparkContext::RecordJob() {
  uint64_t job = ++metrics_.jobs;
  if (tracer_.enabled()) {
    tracer_.Record(SpanKind::kJob, "job#" + std::to_string(job),
                   metrics_.simulated_ms.nanos(), 0, /*lane=*/-1);
  }
}

void SparkContext::ChargeJoinComparisons(uint64_t comparisons) {
  metrics_.join_comparisons += comparisons;
  if (auto op = CurrentOpStats()) op->join_comparisons += comparisons;
}

void SparkContext::ChargeShuffleWrite(int partition, uint64_t records,
                                      uint64_t bytes, uint64_t remote_bytes,
                                      uint64_t local_reads,
                                      uint64_t remote_reads) {
  hb::RecordMerge(hb::MetricsObject(HbId()), "ChargeShuffleWrite",
                  /*commutative=*/true);
  metrics_.shuffle_records += records;
  metrics_.shuffle_bytes += bytes;
  metrics_.remote_shuffle_bytes += remote_bytes;
  metrics_.local_read_records += local_reads;
  metrics_.remote_read_records += remote_reads;
  if (auto op = CurrentOpStats()) {
    op->shuffle_records += records;
    op->shuffle_bytes += bytes;
    op->remote_shuffle_bytes += remote_bytes;
    op->local_read_records += local_reads;
    op->remote_read_records += remote_reads;
  }
  if (tracer_.enabled()) {
    Phase* phase = CurrentPhase();
    int executor = ExecutorOf(partition);
    tracer_.Record(SpanKind::kShuffleWrite,
                   "shuffle p" + std::to_string(partition),
                   phase->start_ns + phase->Busy(executor), 0, executor,
                   records, bytes);
  }
}

void SparkContext::ChargeLocalReads(uint64_t records) {
  metrics_.local_read_records += records;
  if (auto op = CurrentOpStats()) op->local_read_records += records;
}

void SparkContext::ChargeRemoteReads(uint64_t records) {
  metrics_.remote_read_records += records;
  if (auto op = CurrentOpStats()) op->remote_read_records += records;
}

void SparkContext::RecordSuperstep(const char* label) {
  uint64_t step = ++metrics_.supersteps;
  if (tracer_.enabled()) {
    tracer_.Record(SpanKind::kSuperstep,
                   std::string(label) + "#" + std::to_string(step),
                   metrics_.simulated_ms.nanos(), 0, /*lane=*/-1);
  }
}

void SparkContext::RecordMessages(uint64_t count) {
  metrics_.messages += count;
}

void SparkContext::ChargeBroadcastBytes(uint64_t bytes) {
  uint64_t replicated =
      bytes * static_cast<uint64_t>(
                  config_.num_executors > 1 ? config_.num_executors - 1 : 0);
  metrics_.broadcast_bytes += replicated;
  if (auto op = CurrentOpStats()) op->broadcast_bytes += replicated;
  if (config_.num_executors > 1) {
    uint64_t ns = static_cast<uint64_t>(
        config_.cost.net_ns_per_byte * static_cast<double>(bytes) + 0.5);
    if (tracer_.enabled()) {
      tracer_.Record(SpanKind::kBroadcast, "broadcast",
                     metrics_.simulated_ms.nanos(), ns, /*lane=*/-1, 0,
                     bytes);
    }
    metrics_.simulated_ms.AddNanos(ns);
  }
}

void SparkContext::RunParallel(int count,
                               const std::function<void(int)>& fn) {
  if (count <= 0) return;
  int threads = config_.executor_threads > 0 ? config_.executor_threads
                                             : config_.num_executors;
  if (count == 1 || threads <= 1 || TaskScheduler::InWorkerThread()) {
    // The serial path declares the SAME fork/join structure as the pooled
    // path: every index is a logical task segment concurrent with its
    // siblings. This is what makes Tier C verdicts independent of
    // executor_threads — a race fires at --threads=1 exactly when it
    // would at --threads=8.
    hb::BatchScope batch(count);
    for (int i = 0; i < count; ++i) {
      hb::TaskScope task(batch, i);
      fn(i);
    }
    return;
  }
  std::call_once(scheduler_once_, [this, threads] {
    // Publication: the pool becomes usable for every later caller through
    // the call_once barrier (concurrent serving drivers race to this).
    hb::RecordAccess(hb::PoolInitObject(HbId()), hb::Access::kWrite,
                     "TaskScheduler::init");
    scheduler_ = std::make_unique<TaskScheduler>(threads);
    hb::Publish(hb::PoolInitObject(HbId()));
  });
  hb::Consume(hb::PoolInitObject(HbId()));
  hb::RecordAccess(hb::PoolInitObject(HbId()), hb::Access::kRead,
                   "scheduler.use");
  Phase* phase = CurrentPhase();
  std::shared_ptr<OpStats> op = CurrentOpStats();
  hb::BatchScope batch(count);
  scheduler_->ParallelFor(count, [this, phase, &op, &fn, &batch](int i) {
    // Propagate the submitting thread's phase and operator scope so task
    // charges land in the action's phase and on the operator that issued
    // the action; popped even if fn throws.
    t_phase_frames.push_back({this, phase, false});
    struct FramePopper {
      ~FramePopper() { t_phase_frames.pop_back(); }
    } popper;
    hb::TaskScope task(batch, i);
    OpScopeGuard op_scope(op);
    fn(i);
  });
}

}  // namespace rdfspark::spark
