#ifndef RDFSPARK_SPARK_GRAPHX_GRAPH_H_
#define RDFSPARK_SPARK_GRAPHX_GRAPH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "spark/rdd.h"

namespace rdfspark::spark::graphx {

using VertexId = int64_t;

/// A directed edge with attribute ED.
template <typename ED>
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  ED attr{};

  bool operator==(const Edge&) const = default;
};

template <typename ED>
uint64_t HashValue(const Edge<ED>& e) {
  using rdfspark::spark::HashValue;
  return CombineHash64(CombineHash64(HashValue(e.src), HashValue(e.dst)),
                       HashValue(e.attr));
}

template <typename ED>
uint64_t EstimateSize(const Edge<ED>& e) {
  using rdfspark::spark::EstimateSize;
  return 16 + EstimateSize(e.attr);
}

/// An edge with both endpoint attributes attached (GraphX's EdgeTriplet).
template <typename VD, typename ED>
struct EdgeTriplet {
  VertexId src = 0;
  VertexId dst = 0;
  ED attr{};
  VD src_attr{};
  VD dst_attr{};
};

template <typename VD, typename ED>
uint64_t EstimateSize(const EdgeTriplet<VD, ED>& t) {
  using rdfspark::spark::EstimateSize;
  return 16 + EstimateSize(t.attr) + EstimateSize(t.src_attr) +
         EstimateSize(t.dst_attr);
}

/// How edges are assigned to partitions — GraphX's PartitionStrategy. The
/// choice controls replication and communication, which is the substance of
/// the paper's observation that "graph partitioning focuses on minimizing
/// the edge-cut between partitions".
enum class PartitionStrategy {
  kEdgePartition1D,         // hash(src)
  kEdgePartition2D,         // grid by (hash(src), hash(dst))
  kRandomVertexCut,         // hash(src, dst)
  kCanonicalRandomVertexCut  // hash(min, max) — co-locates both directions
};

const char* PartitionStrategyName(PartitionStrategy s);

/// Message direction filter for AggregateMessages.
enum class EdgeDirection { kOut, kIn, kEither };

/// A property graph: a vertex RDD (id -> VD) and an edge RDD, mirroring
/// GraphX's Graph[VD, ED] ("Resilient Distributed Graph"). All bulk
/// operations run through the RDD layer so shuffle/messaging costs are
/// accounted.
template <typename VD, typename ED>
class Graph {
 public:
  Graph() = default;
  Graph(Rdd<std::pair<VertexId, VD>> vertices, Rdd<Edge<ED>> edges)
      : vertices_(std::move(vertices)), edges_(std::move(edges)) {}

  /// Builds a graph, deriving missing vertices from edge endpoints with
  /// `default_attr`.
  static Graph FromEdges(SparkContext* sc, std::vector<Edge<ED>> edges,
                         VD default_attr, int num_partitions = -1) {
    auto edge_rdd = Parallelize(sc, std::move(edges), num_partitions);
    auto vertex_ids =
        edge_rdd
            .FlatMap([](const Edge<ED>& e) {
              return std::vector<VertexId>{e.src, e.dst};
            })
            .Distinct();
    auto vertices = vertex_ids.Map([default_attr](const VertexId& id) {
      return std::pair<VertexId, VD>(id, default_attr);
    });
    return Graph(vertices, edge_rdd);
  }

  const Rdd<std::pair<VertexId, VD>>& vertices() const { return vertices_; }
  const Rdd<Edge<ED>>& edges() const { return edges_; }
  SparkContext* context() const { return edges_.context(); }

  uint64_t NumVertices() const { return vertices_.Count(); }
  uint64_t NumEdges() const { return edges_.Count(); }

  /// Re-partitions edges under the given strategy (returns a new graph).
  Graph PartitionBy(PartitionStrategy strategy, int num_partitions = -1) const {
    int n = num_partitions > 0 ? num_partitions : edges_.num_partitions();
    auto hash = [strategy, n](const Edge<ED>& e) -> uint64_t {
      switch (strategy) {
        case PartitionStrategy::kEdgePartition1D:
          return MixHash64(static_cast<uint64_t>(e.src));
        case PartitionStrategy::kEdgePartition2D: {
          uint64_t rows = static_cast<uint64_t>(n);
          uint64_t grid = 1;
          while (grid * grid < rows) ++grid;
          uint64_t r = MixHash64(static_cast<uint64_t>(e.src)) % grid;
          uint64_t c = MixHash64(static_cast<uint64_t>(e.dst)) % grid;
          return r * grid + c;
        }
        case PartitionStrategy::kRandomVertexCut:
          return CombineHash64(MixHash64(static_cast<uint64_t>(e.src)),
                               MixHash64(static_cast<uint64_t>(e.dst)));
        case PartitionStrategy::kCanonicalRandomVertexCut: {
          VertexId lo = std::min(e.src, e.dst);
          VertexId hi = std::max(e.src, e.dst);
          return CombineHash64(MixHash64(static_cast<uint64_t>(lo)),
                               MixHash64(static_cast<uint64_t>(hi)));
        }
      }
      return 0;
    };
    auto shuffled = edges_.ShuffleBy(
        hash, n, "GraphPartitionBy",
        PartitionerInfo{std::string("graph-") + PartitionStrategyName(strategy),
                        n, 0});
    return Graph(vertices_, shuffled);
  }

  /// Transforms vertex attributes.
  template <typename F>
  auto MapVertices(F f) const
      -> Graph<std::invoke_result_t<F, VertexId, const VD&>, ED> {
    using VD2 = std::invoke_result_t<F, VertexId, const VD&>;
    auto mapped = vertices_.Map([f](const std::pair<VertexId, VD>& kv) {
      return std::pair<VertexId, VD2>(kv.first, f(kv.first, kv.second));
    });
    return Graph<VD2, ED>(mapped, edges_);
  }

  /// Joins new attributes onto vertices (missing entries keep old attr).
  template <typename U, typename F>
  Graph JoinVertices(const Rdd<std::pair<VertexId, U>>& table, F f) const {
    auto joined = vertices_.LeftOuterJoin(table).Map(
        [f](const std::pair<VertexId, std::pair<VD, std::optional<U>>>& kv) {
          const auto& [old_attr, update] = kv.second;
          VD attr = update ? f(kv.first, old_attr, *update) : old_attr;
          return std::pair<VertexId, VD>(kv.first, attr);
        });
    return Graph(joined, edges_);
  }

  /// GraphX's outerJoinVertices: every vertex is rewritten, receiving the
  /// joined value as an optional; the vertex type may change.
  /// f(id, attr, optional<U>) -> VD2.
  template <typename U, typename F>
  auto OuterJoinVertices(const Rdd<std::pair<VertexId, U>>& table, F f) const
      -> Graph<std::invoke_result_t<F, VertexId, const VD&,
                                    const std::optional<U>&>,
               ED> {
    using VD2 = std::invoke_result_t<F, VertexId, const VD&,
                                     const std::optional<U>&>;
    auto joined = vertices_.LeftOuterJoin(table).Map(
        [f](const std::pair<VertexId, std::pair<VD, std::optional<U>>>& kv) {
          return std::pair<VertexId, VD2>(
              kv.first, f(kv.first, kv.second.first, kv.second.second));
        });
    return Graph<VD2, ED>(joined, edges_);
  }

  /// The triplets view: every edge with both endpoint attributes. Costs two
  /// joins (vertex attrs ship to edge partitions), as in GraphX.
  Rdd<EdgeTriplet<VD, ED>> Triplets() const {
    auto by_src = edges_.KeyBy([](const Edge<ED>& e) { return e.src; });
    auto with_src = by_src.Join(vertices_);
    auto by_dst = with_src.Map(
        [](const std::pair<VertexId, std::pair<Edge<ED>, VD>>& kv) {
          return std::pair<VertexId, std::pair<Edge<ED>, VD>>(
              kv.second.first.dst, kv.second);
        });
    auto with_both = by_dst.Join(vertices_);
    return with_both.Map(
        [](const std::pair<VertexId,
                           std::pair<std::pair<Edge<ED>, VD>, VD>>& kv) {
          EdgeTriplet<VD, ED> t;
          t.src = kv.second.first.first.src;
          t.dst = kv.second.first.first.dst;
          t.attr = kv.second.first.first.attr;
          t.src_attr = kv.second.first.second;
          t.dst_attr = kv.second.second;
          return t;
        });
  }

  /// GraphX's aggregateMessages: `send` inspects a triplet and emits
  /// (vertex, message) pairs; `merge` combines messages per vertex.
  /// Message traffic is recorded in the metrics.
  template <typename M, typename SendFn, typename MergeFn>
  Rdd<std::pair<VertexId, M>> AggregateMessages(SendFn send,
                                                MergeFn merge) const {
    SparkContext* sc = context();
    sc->RecordSuperstep();  // one graph-parallel round
    auto messages = Triplets().FlatMap(
        [send, sc](const EdgeTriplet<VD, ED>& t) {
          std::vector<std::pair<VertexId, M>> out = send(t);
          sc->RecordMessages(out.size());
          return out;
        });
    return messages.ReduceByKey(merge);
  }

  /// Pregel: iterate vertex programs until no messages flow or max_iter.
  /// vprog(id, attr, msg) -> new attr; send(triplet) -> messages;
  /// merge(m1, m2) -> m.
  template <typename M, typename VProg, typename SendFn, typename MergeFn>
  Graph Pregel(M initial_msg, int max_iterations, VProg vprog, SendFn send,
               MergeFn merge) const {
    // Superstep 0: deliver the initial message to every vertex. Captures
    // are by value: the closure lives inside a lazy lineage that can
    // outlive this call.
    auto g = MapVertices([vprog, initial_msg](VertexId id, const VD& attr) {
      return vprog(id, attr, initial_msg);
    });
    Graph current(g.vertices().Cache(), edges_);
    for (int i = 0; i < max_iterations; ++i) {
      auto msgs = current.template AggregateMessages<M>(send, merge);
      if (msgs.Count() == 0) break;
      current = current.JoinVertices(
          msgs, [vprog](VertexId id, const VD& attr, const M& msg) {
            return vprog(id, attr, msg);
          });
    }
    return current;
  }

  /// Keeps edges whose triplet passes `edge_pred` and vertices passing
  /// `vertex_pred`; dangling edges are dropped (GraphX subgraph semantics).
  template <typename VPred, typename EPred>
  Graph Subgraph(VPred vertex_pred, EPred edge_pred) const {
    auto kept_vertices =
        vertices_.Filter([vertex_pred](const std::pair<VertexId, VD>& kv) {
          return vertex_pred(kv.first, kv.second);
        });
    auto triplets = Triplets();
    auto kept_edges =
        triplets
            .Filter([vertex_pred, edge_pred](const EdgeTriplet<VD, ED>& t) {
              return edge_pred(t) && vertex_pred(t.src, t.src_attr) &&
                     vertex_pred(t.dst, t.dst_attr);
            })
            .Map([](const EdgeTriplet<VD, ED>& t) {
              return Edge<ED>{t.src, t.dst, t.attr};
            });
    return Graph(kept_vertices, kept_edges);
  }

  /// Reverses every edge.
  Graph Reverse() const {
    auto reversed = edges_.Map([](const Edge<ED>& e) {
      return Edge<ED>{e.dst, e.src, e.attr};
    });
    return Graph(vertices_, reversed);
  }

  /// Out-degree of every vertex present in the edge set.
  Rdd<std::pair<VertexId, uint64_t>> OutDegrees() const {
    return edges_
        .Map([](const Edge<ED>& e) {
          return std::pair<VertexId, uint64_t>(e.src, 1);
        })
        .ReduceByKey([](uint64_t a, uint64_t b) { return a + b; });
  }

 private:
  Rdd<std::pair<VertexId, VD>> vertices_;
  Rdd<Edge<ED>> edges_;
};

}  // namespace rdfspark::spark::graphx

#endif  // RDFSPARK_SPARK_GRAPHX_GRAPH_H_
