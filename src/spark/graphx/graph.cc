#include "spark/graphx/graph.h"

namespace rdfspark::spark::graphx {

const char* PartitionStrategyName(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kEdgePartition1D:
      return "EdgePartition1D";
    case PartitionStrategy::kEdgePartition2D:
      return "EdgePartition2D";
    case PartitionStrategy::kRandomVertexCut:
      return "RandomVertexCut";
    case PartitionStrategy::kCanonicalRandomVertexCut:
      return "CanonicalRandomVertexCut";
  }
  return "unknown";
}

}  // namespace rdfspark::spark::graphx
