#ifndef RDFSPARK_SPARK_GRAPHX_ALGORITHMS_H_
#define RDFSPARK_SPARK_GRAPHX_ALGORITHMS_H_

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "spark/graphx/graph.h"

namespace rdfspark::spark::graphx {

/// The stock graph algorithms GraphX ships with ("well known graph
/// processing algorithms, like pagerank, triangle counting and shortest
/// paths computation", §III). Each is implemented on the public Graph API
/// so its message/superstep costs show up in the metrics.

/// PageRank with damping 0.85. Returns (vertex, rank); ranks sum to ~|V|.
template <typename VD, typename ED>
Rdd<std::pair<VertexId, double>> PageRank(const Graph<VD, ED>& graph,
                                          int iterations = 10) {
  // Shared ownership: the send lambda lives inside a lazy RDD lineage that
  // outlives this function, so it must own the degree table.
  auto degrees =
      std::make_shared<const std::unordered_map<VertexId, std::vector<uint64_t>,
                                                ValueHasher>>(
          CollectAsMultimap(graph.OutDegrees()));
  auto ranked = graph.MapVertices([](VertexId, const VD&) { return 1.0; });
  Graph<double, ED> current(ranked.vertices(), graph.edges());
  for (int i = 0; i < iterations; ++i) {
    auto contribs =
        current.template AggregateMessages<double>(
            [degrees](const EdgeTriplet<double, ED>& t) {
              auto it = degrees->find(t.src);
              uint64_t deg = it == degrees->end() || it->second.empty()
                                 ? 1
                                 : it->second[0];
              return std::vector<std::pair<VertexId, double>>{
                  {t.dst, t.src_attr / static_cast<double>(deg)}};
            },
            [](double a, double b) { return a + b; });
    // Every vertex is re-ranked, message or not (vertices with no in-edges
    // settle at the teleport probability).
    current = current.OuterJoinVertices(
        contribs,
        [](VertexId, const double&, const std::optional<double>& sum) {
          return 0.15 + 0.85 * sum.value_or(0.0);
        });
  }
  return current.vertices();
}

/// Connected components via min-id label propagation (Pregel). Edges are
/// treated as undirected. Returns (vertex, component id).
template <typename VD, typename ED>
Rdd<std::pair<VertexId, VertexId>> ConnectedComponents(
    const Graph<VD, ED>& graph, int max_iterations = 64) {
  auto labeled =
      graph.MapVertices([](VertexId id, const VD&) { return id; });
  Graph<VertexId, ED> init(labeled.vertices(), graph.edges());
  auto result = init.template Pregel<VertexId>(
      std::numeric_limits<VertexId>::max(), max_iterations,
      [](VertexId, const VertexId& attr, const VertexId& msg) {
        return std::min(attr, msg);
      },
      [](const EdgeTriplet<VertexId, ED>& t) {
        std::vector<std::pair<VertexId, VertexId>> out;
        if (t.src_attr < t.dst_attr) out.emplace_back(t.dst, t.src_attr);
        if (t.dst_attr < t.src_attr) out.emplace_back(t.src, t.dst_attr);
        return out;
      },
      [](const VertexId& a, const VertexId& b) { return std::min(a, b); });
  return result.vertices();
}

/// Exact triangle count (edges deduplicated and canonicalized first).
template <typename VD, typename ED>
uint64_t TriangleCount(const Graph<VD, ED>& graph) {
  // Canonical undirected edge list without self loops.
  auto canonical = graph.edges()
                       .Map([](const Edge<ED>& e) {
                         return std::pair<VertexId, VertexId>(
                             std::min(e.src, e.dst), std::max(e.src, e.dst));
                       })
                       .Filter([](const std::pair<VertexId, VertexId>& e) {
                         return e.first != e.second;
                       })
                       .Distinct();
  // Neighbor sets.
  auto neighbors =
      canonical
          .FlatMap([](const std::pair<VertexId, VertexId>& e) {
            return std::vector<std::pair<VertexId, VertexId>>{
                {e.first, e.second}, {e.second, e.first}};
          })
          .GroupByKey();
  auto nbr_map = CollectAsMultimap(neighbors.MapValues(
      [](const std::vector<VertexId>& vs) {
        std::vector<VertexId> sorted = vs;
        std::sort(sorted.begin(), sorted.end());
        return sorted;
      }));
  // Count common neighbors per edge.
  auto counts = canonical.Map(
      [&nbr_map](const std::pair<VertexId, VertexId>& e) -> uint64_t {
        auto iu = nbr_map.find(e.first);
        auto iv = nbr_map.find(e.second);
        if (iu == nbr_map.end() || iv == nbr_map.end()) return 0;
        const auto& nu = iu->second[0];
        const auto& nv = iv->second[0];
        uint64_t common = 0;
        size_t i = 0, j = 0;
        while (i < nu.size() && j < nv.size()) {
          if (nu[i] == nv[j]) {
            ++common;
            ++i;
            ++j;
          } else if (nu[i] < nv[j]) {
            ++i;
          } else {
            ++j;
          }
        }
        return common;
      });
  uint64_t total = counts.Fold(0, [](uint64_t a, uint64_t b) { return a + b; });
  return total / 3;
}

/// Single-source shortest hop counts (unit edge weights), Pregel BFS.
/// Unreachable vertices report max<double>.
template <typename VD, typename ED>
Rdd<std::pair<VertexId, double>> ShortestPaths(const Graph<VD, ED>& graph,
                                               VertexId source,
                                               int max_iterations = 64) {
  auto init = graph.MapVertices([source](VertexId id, const VD&) {
    return id == source ? 0.0 : std::numeric_limits<double>::max();
  });
  Graph<double, ED> g(init.vertices(), graph.edges());
  auto result = g.template Pregel<double>(
      std::numeric_limits<double>::max(), max_iterations,
      [](VertexId, const double& attr, const double& msg) {
        return std::min(attr, msg);
      },
      [](const EdgeTriplet<double, ED>& t) {
        std::vector<std::pair<VertexId, double>> out;
        if (t.src_attr != std::numeric_limits<double>::max() &&
            t.src_attr + 1.0 < t.dst_attr) {
          out.emplace_back(t.dst, t.src_attr + 1.0);
        }
        return out;
      },
      [](const double& a, const double& b) { return std::min(a, b); });
  return result.vertices();
}

}  // namespace rdfspark::spark::graphx

#endif  // RDFSPARK_SPARK_GRAPHX_ALGORITHMS_H_
