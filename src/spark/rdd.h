#ifndef RDFSPARK_SPARK_RDD_H_
#define RDFSPARK_SPARK_RDD_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "spark/context.h"
#include "spark/hb.h"
#include "spark/size_estimator.h"
#include "spark/value_hash.h"

namespace rdfspark::spark {

/// Type-erased lineage node. Holds everything the DAG visualizer, the
/// lineage analyzer (spark/lineage.h) and the failure-injection tests need
/// without knowing the element type: parent edges, the narrow/wide
/// dependency kind (is_shuffle), the partitioner identity and the cached
/// flag.
class RddNodeBase {
 public:
  RddNodeBase(int id, std::string name, int num_partitions, bool is_shuffle)
      : id_(id),
        name_(std::move(name)),
        num_partitions_(num_partitions),
        is_shuffle_(is_shuffle) {}
  virtual ~RddNodeBase() = default;

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  int num_partitions() const { return num_partitions_; }
  bool is_shuffle() const { return is_shuffle_; }
  const std::vector<std::shared_ptr<RddNodeBase>>& parents() const {
    return parents_;
  }
  void AddParent(std::shared_ptr<RddNodeBase> p) {
    parents_.push_back(std::move(p));
  }

  const std::optional<PartitionerInfo>& partitioner() const {
    return partitioner_;
  }
  void set_partitioner(PartitionerInfo info) { partitioner_ = std::move(info); }

  /// Whether computed partitions are retained (Spark's persist bit). True
  /// by default — the simulator historically persists everything — unless
  /// the owning context was configured with retain_uncached_rdds = false,
  /// in which case only nodes explicitly marked via Rdd::Cache() retain.
  /// Atomic so Uncache() may race pooled partition tasks (TSan-covered;
  /// the HB checker additionally proves the ordering logically — the
  /// RDFSPARK_MUTATE_CACHED_PLAIN build downgrades this flag to a plain
  /// bool, together with its access events, to validate that RC003 fires).
  bool cached() const {
    hb::RecordAccess(hb::CacheFlagObject(id_), kFlagRead, "cached");
#ifdef RDFSPARK_MUTATE_CACHED_PLAIN
    return cached_;
#else
    return cached_.load(std::memory_order_acquire);
#endif
  }
  void SetCached(bool cached) {
    hb::RecordAccess(hb::CacheFlagObject(id_), kFlagWrite, "SetCached");
    StoreCached(cached);
  }

  /// Clears the cached flag and drops every retained partition. Safe to
  /// call concurrently with actions: partitions compute under per-slot
  /// locks, and a task that re-reads an evicted slot recomputes it from
  /// lineage (the same contract as EvictPartition failure injection).
  void Uncache() {
    hb::RecordAccess(hb::CacheFlagObject(id_), kFlagWrite, "Uncache",
                     hb::kSiteEviction);
    StoreCached(false);
    DropRetained();
  }

  /// Drops the cached data of one partition (failure injection); the next
  /// read recomputes it from lineage.
  virtual void EvictPartition(int partition) = 0;
  virtual bool IsPartitionCached(int partition) const = 0;

  /// Computes (and caches) one partition without exposing the element type.
  /// Actions use this to materialize shuffle dependencies from the driver
  /// before fanning partition tasks out to the executor pool.
  virtual void ComputePartition(int partition) = 0;

  /// Bytes currently held by retained (cached) partitions, in the shared
  /// EstimateSize() model. Never computes anything: uncomputed or evicted
  /// partitions contribute zero. Feeds the Tier D cache-retention rule
  /// (RS004) through LineageGraph::Capture.
  virtual uint64_t RetainedBytes() const { return 0; }

 protected:
  /// Drops every retained partition (Uncache's type-erased half).
  virtual void DropRetained() = 0;

 private:
#ifdef RDFSPARK_MUTATE_CACHED_PLAIN
  /// MUTATION build: the flag is a plain bool and its accesses record as
  /// plain reads/writes, so the checker sees the bug the build introduces.
  static constexpr hb::Access kFlagRead = hb::Access::kRead;
  static constexpr hb::Access kFlagWrite = hb::Access::kWrite;
#else
  static constexpr hb::Access kFlagRead = hb::Access::kAtomicRead;
  static constexpr hb::Access kFlagWrite = hb::Access::kAtomicWrite;
#endif

  void StoreCached(bool cached) {
#ifdef RDFSPARK_MUTATE_CACHED_PLAIN
    cached_ = cached;
#else
    cached_.store(cached, std::memory_order_release);
#endif
  }

  int id_;
  std::string name_;
  int num_partitions_;
  bool is_shuffle_;
#ifdef RDFSPARK_MUTATE_CACHED_PLAIN
  bool cached_ = true;
#else
  std::atomic<bool> cached_{true};
#endif
  std::vector<std::shared_ptr<RddNodeBase>> parents_;
  std::optional<PartitionerInfo> partitioner_;
};

/// Concrete lineage node for element type T. Partitions are computed on
/// demand by `compute` and retained while the cached flag holds (every RDD
/// by default, so iterative engines behave; only Cache()d ones when the
/// context runs with retain_uncached_rdds = false). `EvictPartition`
/// restores the recompute path for fault-tolerance tests.
template <typename T>
class RddNode : public RddNodeBase {
 public:
  using ComputeFn = std::function<std::vector<T>(int)>;

  RddNode(int id, std::string name, int num_partitions, bool is_shuffle,
          ComputeFn compute)
      : RddNodeBase(id, std::move(name), num_partitions, is_shuffle),
        compute_(std::move(compute)),
        op_scope_(CurrentOpStats()),
        cache_(static_cast<size_t>(num_partitions)),
        locks_(std::make_unique<std::mutex[]>(
            static_cast<size_t>(std::max(num_partitions, 1)))) {}

  /// Thread-safe compute-or-get: concurrent tasks may need the same parent
  /// partition (shared lineage, Union of the same RDD), so each partition
  /// slot is guarded by its own mutex. The lock is held while `compute_`
  /// runs; lock acquisition only ever follows lineage edges child->parent
  /// (a DAG), so no cycle — and no deadlock — is possible. The computed
  /// vector is retained in the slot only while `cached()` holds — a
  /// transient node (retain_uncached_rdds = false, no Cache()) recomputes
  /// for every consumer, which is what LN001 statically predicts.
  std::shared_ptr<const std::vector<T>> GetPartition(int p) {
    RDFSPARK_SLOT_LOCK(locks_[p]);
    if (cache_[p]) {
      hb::RecordAccess(hb::CacheSlotObject(id(), p), hb::Access::kRead,
                       "GetPartition");
      return cache_[p];
    }
    hb::RecordAccess(hb::CacheSlotObject(id(), p), hb::Access::kWrite,
                     "GetPartition.compute");
    // Reinstall the operator scope captured when this node was built:
    // RDDs are lazy, so by the time compute_ runs the plan executor may
    // be inside a different operator — charges still belong to the one
    // that created the lineage (Spark's withScope).
    OpScopeGuard scope(op_scope_);
    auto data = std::make_shared<std::vector<T>>(compute_(p));
    if (cached()) cache_[p] = data;
    return data;
  }

  void EvictPartition(int partition) override {
    RDFSPARK_SLOT_LOCK(locks_[partition]);
    hb::RecordAccess(hb::CacheSlotObject(id(), partition), hb::Access::kWrite,
                     "EvictPartition", hb::kSiteEviction);
    cache_[partition].reset();
  }
  bool IsPartitionCached(int partition) const override {
    RDFSPARK_SLOT_LOCK(locks_[partition]);
    hb::RecordAccess(hb::CacheSlotObject(id(), partition), hb::Access::kRead,
                     "IsPartitionCached");
    return cache_[partition] != nullptr;
  }
  void ComputePartition(int partition) override { GetPartition(partition); }

  /// Bytes held by currently cached partitions: per-partition vector header
  /// plus EstimateSize of every retained element. Reads only what is already
  /// materialized — the Tier D retention probe must never trigger compute.
  uint64_t RetainedBytes() const override {
    uint64_t total = 0;
    for (int p = 0; p < num_partitions(); ++p) {
      RDFSPARK_SLOT_LOCK(locks_[p]);
      hb::RecordAccess(hb::CacheSlotObject(id(), p), hb::Access::kRead,
                       "RetainedBytes");
      const auto& slot = cache_[static_cast<size_t>(p)];
      if (!slot) continue;
      total += 24;  // Vector header, matching EstimateSize's container model.
      for (const T& elem : *slot) total += EstimateSize(elem);
    }
    return total;
  }

  /// Total records across currently cached partitions. The EXPLAIN ANALYZE
  /// row-count probe: after a plan ran, every partition an operator's RDD
  /// produced is cached, and reading cache sizes charges nothing.
  uint64_t CachedRecords() const {
    uint64_t total = 0;
    for (int p = 0; p < num_partitions(); ++p) {
      RDFSPARK_SLOT_LOCK(locks_[p]);
      hb::RecordAccess(hb::CacheSlotObject(id(), p), hb::Access::kRead,
                       "CachedRecords");
      if (cache_[static_cast<size_t>(p)]) {
        total += cache_[static_cast<size_t>(p)]->size();
      }
    }
    return total;
  }

 protected:
  void DropRetained() override {
    for (int p = 0; p < num_partitions(); ++p) {
      RDFSPARK_SLOT_LOCK(locks_[p]);
      hb::RecordAccess(hb::CacheSlotObject(id(), p), hb::Access::kWrite,
                       "Uncache.drop", hb::kSiteEviction);
      cache_[static_cast<size_t>(p)].reset();
    }
  }

 private:
  ComputeFn compute_;
  /// Operator scope active when the node was created (null outside plans).
  std::shared_ptr<OpStats> op_scope_;
  std::vector<std::shared_ptr<std::vector<T>>> cache_;
  mutable std::unique_ptr<std::mutex[]> locks_;  ///< One per partition.
};

/// Materializes every shuffle in `node`'s lineage, deepest first, by
/// computing one partition of each shuffle node from the calling (driver)
/// thread. A shuffle computes all of its buckets on first touch, so after
/// this walk the per-partition tasks an action fans out never trigger a
/// nested materialization from a pool worker — the shuffle map side itself
/// runs on the pool instead of serially inside whichever task got there
/// first.
inline void MaterializeShuffleDeps(RddNodeBase* node) {
  std::unordered_set<int> visited;
  std::function<void(RddNodeBase*)> visit = [&](RddNodeBase* n) {
    if (!visited.insert(n->id()).second) return;
    for (const auto& parent : n->parents()) visit(parent.get());
    if (n->is_shuffle() && n->num_partitions() > 0) n->ComputePartition(0);
  };
  visit(node);
}

template <typename T>
class Rdd;

/// Creates an RDD from driver-local data, splitting it into `num_partitions`
/// roughly equal slices (Spark's sc.parallelize).
template <typename T>
Rdd<T> Parallelize(SparkContext* sc, std::vector<T> data,
                   int num_partitions = -1);

/// An immutable, partitioned, lazily-computed collection with lineage —
/// the simulator's counterpart of Spark's RDD. Transformations build new
/// lineage nodes; actions trigger computation and charge the cost model.
template <typename T>
class Rdd {
 public:
  using Element = T;

  Rdd() = default;
  Rdd(SparkContext* sc, std::shared_ptr<RddNode<T>> node)
      : sc_(sc), node_(std::move(node)) {}

  bool valid() const { return node_ != nullptr; }
  SparkContext* context() const { return sc_; }
  const std::shared_ptr<RddNode<T>>& node() const { return node_; }
  int num_partitions() const { return node_->num_partitions(); }
  const std::optional<PartitionerInfo>& partitioner() const {
    return node_->partitioner();
  }

  // ---------------------------------------------------------------------
  // Narrow transformations.
  // ---------------------------------------------------------------------

  /// Applies `f` to every element.
  template <typename F>
  auto Map(F f) const -> Rdd<std::invoke_result_t<F, const T&>> {
    using U = std::invoke_result_t<F, const T&>;
    auto* sc = sc_;
    auto parent = node_;
    auto compute = [sc, parent, f](int p) {
      auto in = parent->GetPartition(p);
      sc->ChargeCompute(p, in->size());
      std::vector<U> out;
      out.reserve(in->size());
      for (const T& x : *in) out.push_back(f(x));
      return out;
    };
    return MakeChild<U>("Map", node_->num_partitions(), false, compute,
                        std::nullopt);
  }

  /// Applies `f`, concatenating the produced vectors.
  template <typename F>
  auto FlatMap(F f) const
      -> Rdd<typename std::invoke_result_t<F, const T&>::value_type> {
    using U = typename std::invoke_result_t<F, const T&>::value_type;
    auto* sc = sc_;
    auto parent = node_;
    auto compute = [sc, parent, f](int p) {
      auto in = parent->GetPartition(p);
      sc->ChargeCompute(p, in->size());
      std::vector<U> out;
      for (const T& x : *in) {
        auto produced = f(x);
        for (auto& u : produced) out.push_back(std::move(u));
      }
      return out;
    };
    return MakeChild<U>("FlatMap", node_->num_partitions(), false, compute,
                        std::nullopt);
  }

  /// Keeps elements satisfying `pred`. Preserves the partitioner.
  template <typename F>
  Rdd<T> Filter(F pred) const {
    auto* sc = sc_;
    auto parent = node_;
    auto compute = [sc, parent, pred](int p) {
      auto in = parent->GetPartition(p);
      sc->ChargeCompute(p, in->size());
      std::vector<T> out;
      for (const T& x : *in) {
        if (pred(x)) out.push_back(x);
      }
      return out;
    };
    return MakeChild<T>("Filter", node_->num_partitions(), false, compute,
                        node_->partitioner());
  }

  /// Applies `f` to each whole partition: f(partition_index, const
  /// std::vector<T>&) -> std::vector<U>. Batch kernels that keep rows on
  /// their key's partition pass the parent's `info` through; default is a
  /// partitioner-destroying transform, as in Spark.
  template <typename F>
  auto MapPartitionsWithIndex(F f,
                              std::optional<PartitionerInfo> info =
                                  std::nullopt) const
      -> Rdd<typename std::invoke_result_t<F, int,
                                           const std::vector<T>&>::value_type> {
    using U =
        typename std::invoke_result_t<F, int,
                                      const std::vector<T>&>::value_type;
    auto* sc = sc_;
    auto parent = node_;
    auto compute = [sc, parent, f](int p) {
      auto in = parent->GetPartition(p);
      sc->ChargeCompute(p, in->size());
      return f(p, *in);
    };
    return MakeChild<U>("MapPartitions", node_->num_partitions(), false,
                        compute, std::move(info));
  }

  /// Zips co-partitioned RDDs partition-by-partition:
  /// f(partition_index, const std::vector<T>&, const std::vector<U>&) ->
  /// std::vector<V>. Narrow on both sides — the batch-join kernels use this
  /// to probe a co-partitioned build side without a shuffle.
  template <typename U, typename F>
  auto ZipPartitions(const Rdd<U>& other, F f,
                     std::optional<PartitionerInfo> info = std::nullopt) const
      -> Rdd<typename std::invoke_result_t<
          F, int, const std::vector<T>&,
          const std::vector<U>&>::value_type> {
    using V = typename std::invoke_result_t<F, int, const std::vector<T>&,
                                            const std::vector<U>&>::value_type;
    auto* sc = sc_;
    auto left = node_;
    auto right = other.node();
    auto compute = [sc, left, right, f](int p) {
      auto l = left->GetPartition(p);
      auto r = right->GetPartition(p);
      sc->ChargeCompute(p, l->size() + r->size());
      return f(p, *l, *r);
    };
    auto child = MakeChild<V>("ZipPartitions", node_->num_partitions(), false,
                              compute, std::move(info));
    child.node()->AddParent(right);
    return child;
  }

  /// Pairs every element with key `f(x)`.
  template <typename F>
  auto KeyBy(F f) const -> Rdd<std::pair<std::invoke_result_t<F, const T&>, T>> {
    using K = std::invoke_result_t<F, const T&>;
    return Map([f](const T& x) { return std::pair<K, T>(f(x), x); });
  }

  /// Concatenates two RDDs; partitions are appended (reads stay local, as in
  /// Spark's UnionRDD).
  Rdd<T> Union(const Rdd<T>& other) const {
    auto* sc = sc_;
    auto a = node_;
    auto b = other.node_;
    int an = a->num_partitions();
    int total = an + b->num_partitions();
    auto compute = [sc, a, b, an](int p) {
      auto in = p < an ? a->GetPartition(p) : b->GetPartition(p - an);
      sc->ChargeCompute(p, in->size());
      return *in;
    };
    auto child = MakeChild<T>("Union", total, false, compute, std::nullopt);
    child.node_->AddParent(b);
    return child;
  }

  /// Deterministic sample of ~fraction of the elements.
  Rdd<T> Sample(double fraction, uint64_t seed = 17) const {
    auto* sc = sc_;
    auto parent = node_;
    auto compute = [sc, parent, fraction, seed](int p) {
      auto in = parent->GetPartition(p);
      sc->ChargeCompute(p, in->size());
      std::vector<T> out;
      uint64_t i = 0;
      for (const T& x : *in) {
        uint64_t h = MixHash64(seed ^ MixHash64(uint64_t(p) << 32 | i++));
        if (static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0) <
            fraction) {
          out.push_back(x);
        }
      }
      return out;
    };
    return MakeChild<T>("Sample", node_->num_partitions(), false, compute,
                        std::nullopt);
  }

  /// Distinct elements present in both RDDs (Spark's intersection).
  Rdd<T> Intersection(const Rdd<T>& other, int num_partitions = -1) const {
    int n = ResolvePartitions(num_partitions);
    auto left = KeyBy([](const T& x) { return HashValue(x); })
                    .PartitionByKey(n);
    auto right = other.KeyBy([](const T& x) { return HashValue(x); })
                     .PartitionByKey(n);
    auto grouped = left.CoGroup(right, n);
    return grouped.FlatMap(
        [](const std::pair<uint64_t,
                           std::pair<std::vector<T>, std::vector<T>>>& kv) {
          std::vector<T> out;
          // Hash buckets may mix values: verify actual membership.
          for (const T& x : kv.second.first) {
            bool in_right = false;
            for (const T& y : kv.second.second) in_right |= x == y;
            bool already = false;
            for (const T& z : out) already |= x == z;
            if (in_right && !already) out.push_back(x);
          }
          return out;
        });
  }

  /// Elements of this RDD whose value does not occur in `other` (Spark's
  /// subtract; duplicates of surviving values are kept).
  Rdd<T> Subtract(const Rdd<T>& other, int num_partitions = -1) const {
    int n = ResolvePartitions(num_partitions);
    auto left = KeyBy([](const T& x) { return HashValue(x); })
                    .PartitionByKey(n);
    auto right = other.KeyBy([](const T& x) { return HashValue(x); })
                     .PartitionByKey(n);
    auto grouped = left.CoGroup(right, n);
    return grouped.FlatMap(
        [](const std::pair<uint64_t,
                           std::pair<std::vector<T>, std::vector<T>>>& kv) {
          std::vector<T> out;
          for (const T& x : kv.second.first) {
            bool in_right = false;
            for (const T& y : kv.second.second) in_right |= x == y;
            if (!in_right) out.push_back(x);
          }
          return out;
        });
  }

  /// Pairs every element with its global index in partition order (Spark's
  /// zipWithIndex; like Spark, this runs a job to size the partitions).
  Rdd<std::pair<T, int64_t>> ZipWithIndex() const {
    auto* sc = sc_;
    auto parent = node_;
    // Size every partition (one job, as in Spark).
    std::vector<int64_t> offsets(static_cast<size_t>(
                                     parent->num_partitions()) +
                                 1,
                                 0);
    MaterializeShuffleDeps(parent.get());
    sc->RecordJob();
    sc->BeginPhase();
    sc->RunParallel(parent->num_partitions(), [&](int p) {
      auto part = parent->GetPartition(p);
      sc->ChargeTask(p, part->size(), 0);
      offsets[static_cast<size_t>(p) + 1] =
          static_cast<int64_t>(part->size());
    });
    sc->EndPhase();
    // Sizes became offsets by prefix sum (serial: offsets chain by index).
    for (size_t p = 1; p < offsets.size(); ++p) offsets[p] += offsets[p - 1];
    auto shared_offsets =
        std::make_shared<const std::vector<int64_t>>(std::move(offsets));
    auto compute = [sc, parent, shared_offsets](int p) {
      auto in = parent->GetPartition(p);
      sc->ChargeCompute(p, in->size());
      std::vector<std::pair<T, int64_t>> out;
      out.reserve(in->size());
      int64_t index = (*shared_offsets)[static_cast<size_t>(p)];
      for (const T& x : *in) out.emplace_back(x, index++);
      return out;
    };
    return Rdd<std::pair<T, int64_t>>(
        sc_, MakeNode<std::pair<T, int64_t>>(sc_, parent, "ZipWithIndex",
                                             parent->num_partitions(), false,
                                             compute, std::nullopt));
  }

  /// Aggregates with different element/accumulator types (Spark's
  /// aggregate): seq folds elements into a per-partition accumulator,
  /// comb merges accumulators on the driver.
  template <typename U, typename SeqFn, typename CombFn>
  U Aggregate(U zero, SeqFn seq, CombFn comb) const {
    auto partials =
        MapPartitionsWithIndex([zero, seq](int, const std::vector<T>& in) {
          U acc = zero;
          for (const T& x : in) acc = seq(acc, x);
          return std::vector<U>{acc};
        }).Collect();
    U result = zero;
    for (const U& part : partials) result = comb(result, part);
    return result;
  }

  /// Pairwise cartesian product. Deliberately expensive (remote partition
  /// pulls + quadratic comparisons) — this is the fallback the naive
  /// SQL translation in [21] degenerates to.
  template <typename U>
  Rdd<std::pair<T, U>> Cartesian(const Rdd<U>& other) const {
    auto* sc = sc_;
    auto a = node_;
    auto b = other.node();
    int bn = b->num_partitions();
    int total = a->num_partitions() * bn;
    auto compute = [sc, a, b, bn](int p) {
      int i = p / bn;
      int j = p % bn;
      auto left = a->GetPartition(i);
      auto right = b->GetPartition(j);
      sc->ChargeCompute(p, left->size() + right->size());
      uint64_t right_bytes = 0;
      for (const U& u : *right) right_bytes += EstimateSize(u);
      bool remote = sc->ExecutorOf(p) != sc->ExecutorOf(j);
      sc->ChargeJoinComparisons(left->size() * right->size());
      if (remote) {
        sc->ChargeRemoteReads(right->size());
        sc->ChargeTask(p, 0, right_bytes);
      } else {
        sc->ChargeLocalReads(right->size());
        sc->ChargeTask(p, 0, 0);
      }
      std::vector<std::pair<T, U>> out;
      // left*right overflows size_t for adversarial partition sizes and, even
      // short of overflow, a single up-front reservation of the full product
      // can exhaust memory before one row is produced. Clamp the hint; the
      // vector grows geometrically past it when the product really is large.
      constexpr size_t kMaxReserve = size_t{1} << 16;
      size_t ls = left->size();
      size_t rs = right->size();
      size_t est = (ls == 0 || rs == 0) ? 0
                   : (ls > kMaxReserve / rs ? kMaxReserve : ls * rs);
      out.reserve(est);
      for (const T& x : *left) {
        for (const U& y : *right) out.emplace_back(x, y);
      }
      return out;
    };
    auto child = MakeChild<std::pair<T, U>>("Cartesian", total, false, compute,
                                            std::nullopt);
    child.node()->AddParent(b);
    return child;
  }

  // ---------------------------------------------------------------------
  // Wide transformations (shuffles).
  // ---------------------------------------------------------------------

  /// Redistributes elements into `num_partitions` by record hash.
  Rdd<T> Repartition(int num_partitions) const {
    return ShuffleBy(
        [](const T& x) { return HashValue(x); }, num_partitions, "Repartition",
        PartitionerInfo{"hash-any", num_partitions, 0});
  }

  /// Removes duplicates (shuffle + local dedup). Requires operator== on T.
  Rdd<T> Distinct(int num_partitions = -1) const {
    int n = ResolvePartitions(num_partitions);
    Rdd<T> shuffled =
        ShuffleBy([](const T& x) { return HashValue(x); }, n, "Distinct",
                  PartitionerInfo{"hash-any", n, 0});
    auto* sc = sc_;
    auto parent = shuffled.node_;
    auto compute = [sc, parent](int p) {
      auto in = parent->GetPartition(p);
      sc->ChargeCompute(p, in->size());
      std::unordered_set<T, ValueHasher> seen;
      std::vector<T> out;
      for (const T& x : *in) {
        if (seen.insert(x).second) out.push_back(x);
      }
      return out;
    };
    return Rdd<T>(sc_, MakeNode<T>(sc_, parent, "DistinctLocal",
                                   parent->num_partitions(), false, compute,
                                   parent->partitioner()));
  }

  /// Globally sorts by `key_fn` using a range partitioner computed from the
  /// materialized key distribution, then sorting each partition locally.
  template <typename F>
  Rdd<T> SortBy(F key_fn, bool ascending = true,
                int num_partitions = -1) const {
    using K = std::invoke_result_t<F, const T&>;
    int n = ResolvePartitions(num_partitions);
    auto* sc = sc_;
    auto parent = node_;
    auto state = std::make_shared<ShuffleState>(n);
    auto compute = [sc, parent, state, key_fn, ascending, n](int p) {
      {
        hb::TrackedLock lock(state->mu);
        if (!state->materialized) {
          // One phase covers both the key sampling pass and the map side.
          sc->BeginPhase();
          // Sample keys to pick range boundaries, then bucket. Parent
          // partitions are scanned on the pool; per-partition key slices
          // concatenate in partition order so bounds are deterministic.
          int np = parent->num_partitions();
          std::vector<std::vector<K>> keys_by_part(static_cast<size_t>(np));
          sc->RunParallel(np, [&](int q) {
            auto in = parent->GetPartition(q);
            auto& slice = keys_by_part[static_cast<size_t>(q)];
            slice.reserve(in->size());
            for (const T& x : *in) slice.push_back(key_fn(x));
          });
          std::vector<K> keys;
          for (auto& slice : keys_by_part) {
            for (K& k : slice) keys.push_back(std::move(k));
          }
          std::sort(keys.begin(), keys.end());
          if (!ascending) std::reverse(keys.begin(), keys.end());
          std::vector<K> bounds;
          for (int b = 1; b < n; ++b) {
            if (!keys.empty()) {
              bounds.push_back(keys[keys.size() * b / n]);
            }
          }
          auto target = [&](const T& x) {
            K k = key_fn(x);
            int lo = 0;
            for (size_t b = 0; b < bounds.size(); ++b) {
              bool past = ascending ? (k > bounds[b]) : (k < bounds[b]);
              if (past) lo = static_cast<int>(b) + 1;
            }
            return lo;
          };
          MaterializeShuffleInPhase<T>(sc, parent.get(), state.get(), target);
          sc->EndPhase();
        }
      }
      auto out = state->template TakeBucket<T>(sc, p);
      std::sort(out.begin(), out.end(), [&](const T& a, const T& b) {
        return ascending ? key_fn(a) < key_fn(b) : key_fn(b) < key_fn(a);
      });
      return out;
    };
    auto child = Rdd<T>(
        sc_, MakeNode<T>(sc_, parent, "SortBy", n, true, compute,
                         PartitionerInfo{"range", n, 0}));
    return child;
  }

  // ---------------------------------------------------------------------
  // Pair-RDD transformations. Only instantiable when T is std::pair<K, V>.
  // ---------------------------------------------------------------------

  /// Hash-partitions by key. If the RDD already carries an equal
  /// PartitionerInfo this is a no-op (no shuffle) — the mechanism behind all
  /// "pre-partitioning avoids shuffles" assessments.
  template <typename TT = T, typename K = typename TT::first_type>
  Rdd<T> PartitionByKey(int num_partitions = -1,
                        const std::string& kind = "hash") const {
    int n = ResolvePartitions(num_partitions);
    PartitionerInfo info{kind, n, 0};
    if (node_->partitioner() && *node_->partitioner() == info) return *this;
    return ShuffleBy([](const T& kv) { return HashValue(kv.first); }, n,
                     "PartitionByKey", info);
  }

  /// Map-side-combining aggregation by key (Spark's reduceByKey).
  template <typename F, typename TT = T, typename K = typename TT::first_type,
            typename V = typename TT::second_type>
  Rdd<std::pair<K, V>> ReduceByKey(F combine, int num_partitions = -1) const {
    int n = ResolvePartitions(num_partitions);
    auto* sc = sc_;
    auto parent = node_;
    // Map-side combine first (narrow), then shuffle, then final combine.
    auto precombined =
        MapPartitionsWithIndex([combine](int, const std::vector<T>& in) {
          std::unordered_map<K, V, ValueHasher> acc;
          for (const auto& kv : in) {
            auto it = acc.find(kv.first);
            if (it == acc.end()) {
              acc.emplace(kv.first, kv.second);
            } else {
              it->second = combine(it->second, kv.second);
            }
          }
          return std::vector<std::pair<K, V>>(acc.begin(), acc.end());
        });
    PartitionerInfo info{"hash", n, 0};
    auto shuffled = precombined.ShuffleBy(
        [](const std::pair<K, V>& kv) { return HashValue(kv.first); }, n,
        "ReduceByKey", info);
    auto node = shuffled.node();
    auto compute = [sc, node, combine](int p) {
      auto in = node->GetPartition(p);
      sc->ChargeCompute(p, in->size());
      std::unordered_map<K, V, ValueHasher> acc;
      for (const auto& kv : *in) {
        auto it = acc.find(kv.first);
        if (it == acc.end()) {
          acc.emplace(kv.first, kv.second);
        } else {
          it->second = combine(it->second, kv.second);
        }
      }
      return std::vector<std::pair<K, V>>(acc.begin(), acc.end());
    };
    return Rdd<std::pair<K, V>>(
        sc_, MakeNode<std::pair<K, V>>(sc_, node, "ReduceByKeyLocal", n, false,
                                       compute, info));
  }

  /// Groups values per key without map-side combine (Spark's groupByKey —
  /// the full-shuffle behaviour is intentional).
  template <typename TT = T, typename K = typename TT::first_type,
            typename V = typename TT::second_type>
  Rdd<std::pair<K, std::vector<V>>> GroupByKey(int num_partitions = -1) const {
    int n = ResolvePartitions(num_partitions);
    PartitionerInfo info{"hash", n, 0};
    auto shuffled =
        ShuffleBy([](const T& kv) { return HashValue(kv.first); }, n,
                  "GroupByKey", info);
    auto* sc = sc_;
    auto node = shuffled.node();
    auto compute = [sc, node](int p) {
      auto in = node->GetPartition(p);
      sc->ChargeCompute(p, in->size());
      std::unordered_map<K, std::vector<V>, ValueHasher> acc;
      for (const auto& kv : *in) acc[kv.first].push_back(kv.second);
      std::vector<std::pair<K, std::vector<V>>> out;
      out.reserve(acc.size());
      for (auto& [k, vs] : acc) out.emplace_back(k, std::move(vs));
      return out;
    };
    return Rdd<std::pair<K, std::vector<V>>>(
        sc_, MakeNode<std::pair<K, std::vector<V>>>(
                 sc_, node, "GroupByKeyLocal", n, false, compute, info));
  }

  /// Transforms values, preserving keys and the partitioner.
  template <typename F, typename TT = T, typename K = typename TT::first_type,
            typename V = typename TT::second_type>
  auto MapValues(F f) const
      -> Rdd<std::pair<K, std::invoke_result_t<F, const V&>>> {
    using W = std::invoke_result_t<F, const V&>;
    auto* sc = sc_;
    auto parent = node_;
    auto compute = [sc, parent, f](int p) {
      auto in = parent->GetPartition(p);
      sc->ChargeCompute(p, in->size());
      std::vector<std::pair<K, W>> out;
      out.reserve(in->size());
      for (const auto& kv : *in) out.emplace_back(kv.first, f(kv.second));
      return out;
    };
    return Rdd<std::pair<K, W>>(
        sc_, MakeNode<std::pair<K, W>>(sc_, parent, "MapValues",
                                       parent->num_partitions(), false,
                                       compute, parent->partitioner()));
  }

  template <typename TT = T, typename K = typename TT::first_type>
  Rdd<K> Keys() const {
    return Map([](const T& kv) { return kv.first; });
  }

  template <typename TT = T, typename V = typename TT::second_type>
  Rdd<V> Values() const {
    return Map([](const T& kv) { return kv.second; });
  }

  /// Inner hash join. Uses co-partitioned (shuffle-free) execution when both
  /// sides share a partitioner, otherwise shuffles both sides.
  template <typename W, typename TT = T, typename K = typename TT::first_type,
            typename V = typename TT::second_type>
  Rdd<std::pair<K, std::pair<V, W>>> Join(const Rdd<std::pair<K, W>>& other,
                                          int num_partitions = -1) const {
    return JoinImpl<W, K, V, JoinKind::kInner>(other, num_partitions);
  }

  /// Left outer join: right side optional.
  template <typename W, typename TT = T, typename K = typename TT::first_type,
            typename V = typename TT::second_type>
  Rdd<std::pair<K, std::pair<V, std::optional<W>>>> LeftOuterJoin(
      const Rdd<std::pair<K, W>>& other, int num_partitions = -1) const {
    return JoinImpl<W, K, V, JoinKind::kLeftOuter>(other, num_partitions);
  }

  /// Groups both sides by key: (K, (V list, W list)).
  template <typename W, typename TT = T, typename K = typename TT::first_type,
            typename V = typename TT::second_type>
  Rdd<std::pair<K, std::pair<std::vector<V>, std::vector<W>>>> CoGroup(
      const Rdd<std::pair<K, W>>& other, int num_partitions = -1) const {
    int n = ResolvePartitions(num_partitions);
    auto left = PartitionByKey(n);
    auto right = other.PartitionByKey(n);
    auto* sc = sc_;
    auto ln = left.node();
    auto rn = right.node();
    using Out = std::pair<K, std::pair<std::vector<V>, std::vector<W>>>;
    auto compute = [sc, ln, rn](int p) {
      auto l = ln->GetPartition(p);
      auto r = rn->GetPartition(p);
      sc->ChargeCompute(p, l->size() + r->size());
      std::unordered_map<K, std::pair<std::vector<V>, std::vector<W>>,
                         ValueHasher>
          acc;
      for (const auto& kv : *l) acc[kv.first].first.push_back(kv.second);
      for (const auto& kv : *r) acc[kv.first].second.push_back(kv.second);
      std::vector<Out> out;
      out.reserve(acc.size());
      for (auto& [k, vw] : acc) out.emplace_back(k, std::move(vw));
      return out;
    };
    auto node = MakeNode<Out>(sc_, ln, "CoGroup", n, false, compute,
                              PartitionerInfo{"hash", n, 0});
    node->AddParent(rn);
    return Rdd<Out>(sc_, node);
  }

  /// Map-side (broadcast) hash join against a small relation replicated to
  /// all executors. No shuffle of the large side.
  template <typename W, typename TT = T, typename K = typename TT::first_type,
            typename V = typename TT::second_type>
  Rdd<std::pair<K, std::pair<V, W>>> BroadcastHashJoin(
      const std::unordered_map<K, std::vector<W>, ValueHasher>& small) const {
    auto bc = sc_->MakeBroadcast(small);
    auto* sc = sc_;
    auto parent = node_;
    using Out = std::pair<K, std::pair<V, W>>;
    auto compute = [sc, parent, bc](int p) {
      auto in = parent->GetPartition(p);
      sc->ChargeCompute(p, in->size());
      std::vector<Out> out;
      uint64_t comparisons = 0;
      for (const auto& kv : *in) {
        auto it = bc.value().find(kv.first);
        ++comparisons;
        if (it != bc.value().end()) {
          comparisons += it->second.size() - 1;
          for (const W& w : it->second) {
            out.emplace_back(kv.first, std::pair<V, W>(kv.second, w));
          }
        }
      }
      sc->ChargeJoinComparisons(comparisons);
      return out;
    };
    return Rdd<Out>(sc_, MakeNode<Out>(sc_, parent, "BroadcastHashJoin",
                                       parent->num_partitions(), false,
                                       compute, parent->partitioner()));
  }

  /// Removes pairs whose key appears in `other` (used by OPTIONAL/MINUS
  /// style evaluation).
  template <typename W, typename TT = T, typename K = typename TT::first_type,
            typename V = typename TT::second_type>
  Rdd<T> SubtractByKey(const Rdd<std::pair<K, W>>& other,
                       int num_partitions = -1) const {
    int n = ResolvePartitions(num_partitions);
    auto left = PartitionByKey(n);
    auto right = other.PartitionByKey(n);
    auto* sc = sc_;
    auto ln = left.node();
    auto rn = right.node();
    auto compute = [sc, ln, rn](int p) {
      auto l = ln->GetPartition(p);
      auto r = rn->GetPartition(p);
      sc->ChargeCompute(p, l->size() + r->size());
      std::unordered_set<K, ValueHasher> keys;
      for (const auto& kv : *r) keys.insert(kv.first);
      std::vector<T> out;
      for (const auto& kv : *l) {
        if (!keys.contains(kv.first)) out.push_back(kv);
      }
      return out;
    };
    return Rdd<T>(sc_, MakeNode<T>(sc_, ln, "SubtractByKey", n, false, compute,
                                   PartitionerInfo{"hash", n, 0}));
  }

  // ---------------------------------------------------------------------
  // Actions.
  // ---------------------------------------------------------------------

  /// Materializes every partition on the driver. Partition tasks run
  /// concurrently on the executor pool; each writes its own output slot and
  /// the merge walks slots in partition-index order, so the result — and
  /// every metric — is identical to the serial path.
  std::vector<T> Collect() const {
    MaterializeShuffleDeps(node_.get());
    sc_->RecordJob();
    sc_->BeginPhase();
    int np = node_->num_partitions();
    std::vector<std::shared_ptr<const std::vector<T>>> parts(
        static_cast<size_t>(np));
    auto* node = node_.get();
    auto* sc = sc_;
    sc_->RunParallel(np, [node, sc, &parts](int p) {
      auto part = node->GetPartition(p);
      uint64_t bytes = 0;
      for (const T& x : *part) bytes += EstimateSize(x);
      sc->ChargeTask(p, part->size(), bytes);  // results travel to driver
      parts[static_cast<size_t>(p)] = std::move(part);
    });
    sc_->EndPhase();
    size_t total = 0;
    for (const auto& part : parts) total += part->size();
    std::vector<T> out;
    out.reserve(total);
    for (const auto& part : parts) {
      out.insert(out.end(), part->begin(), part->end());
    }
    return out;
  }

  /// Number of elements.
  uint64_t Count() const {
    MaterializeShuffleDeps(node_.get());
    sc_->RecordJob();
    sc_->BeginPhase();
    int np = node_->num_partitions();
    std::vector<uint64_t> sizes(static_cast<size_t>(np), 0);
    auto* node = node_.get();
    auto* sc = sc_;
    sc_->RunParallel(np, [node, sc, &sizes](int p) {
      auto part = node->GetPartition(p);
      sc->ChargeTask(p, part->size(), 0);
      sizes[static_cast<size_t>(p)] = part->size();
    });
    sc_->EndPhase();
    uint64_t n = 0;
    for (uint64_t s : sizes) n += s;
    return n;
  }

  /// First `n` elements in partition order.
  std::vector<T> Take(size_t n) const {
    sc_->RecordJob();
    sc_->BeginPhase();
    std::vector<T> out;
    for (int p = 0; p < node_->num_partitions() && out.size() < n; ++p) {
      auto part = node_->GetPartition(p);
      sc_->ChargeTask(p, part->size(), 0);
      for (const T& x : *part) {
        if (out.size() >= n) break;
        out.push_back(x);
      }
    }
    sc_->EndPhase();
    return out;
  }

  /// Folds all elements with `combine`; empty RDD returns `zero`.
  template <typename F>
  T Fold(T zero, F combine) const {
    auto all = Collect();
    T acc = std::move(zero);
    for (const T& x : all) acc = combine(acc, x);
    return acc;
  }

  /// Counts elements per key (pair RDDs).
  template <typename TT = T, typename K = typename TT::first_type>
  std::map<K, uint64_t> CountByKey() const {
    std::map<K, uint64_t> out;
    for (const auto& kv : Collect()) ++out[kv.first];
    return out;
  }

  /// Estimated resident bytes across all partitions (materializes them).
  uint64_t MemoryFootprint() const {
    uint64_t total = 0;
    for (int p = 0; p < node_->num_partitions(); ++p) {
      auto part = node_->GetPartition(p);
      for (const T& x : *part) total += EstimateSize(x);
    }
    return total;
  }

  /// Marks the RDD persisted (Spark's cache/persist). Under the default
  /// configuration every RDD retains its partitions anyway, so this is
  /// documentation of intent; with retain_uncached_rdds = false it is the
  /// only way a node keeps computed partitions for later consumers.
  Rdd<T> Cache() const {
    node_->SetCached(true);
    return *this;
  }

  /// Clears the persisted mark and drops retained partitions (Spark's
  /// unpersist). Later reads recompute from lineage.
  Rdd<T> Uncache() const {
    node_->Uncache();
    return *this;
  }

  /// Declares that this RDD is partitioned per `info` without shuffling.
  /// For use by operators that provably preserve key placement (e.g. a
  /// per-partition star join over subject-hashed triples keeps rows on the
  /// subject's partition). The caller owns the proof.
  Rdd<T> AssumePartitioner(PartitionerInfo info) const {
    auto* sc = sc_;
    auto parent = node_;
    auto compute = [sc, parent](int p) {
      auto in = parent->GetPartition(p);
      return *in;
    };
    return Rdd<T>(sc_, MakeNode<T>(sc_, parent, "AssumePartitioner",
                                   parent->num_partitions(), false, compute,
                                   std::move(info)));
  }

  /// Lineage description, one node per line (Spark's toDebugString).
  std::string DebugString() const {
    std::string out;
    AppendDebug(node_.get(), 0, &out);
    return out;
  }

  // ---------------------------------------------------------------------
  // Shuffle plumbing (public so sibling templates can reuse it).
  // ---------------------------------------------------------------------

  struct ShuffleState {
    explicit ShuffleState(int n)
        : buckets_void(static_cast<size_t>(n)),
          remote_bytes_per_target(static_cast<size_t>(n), 0) {}

    /// Serializes materialization: the first task to need a bucket runs the
    /// whole map side under this lock; later tasks block, then read. All
    /// fields are immutable once `materialized` is set (readers observe the
    /// writes through the same mutex).
    std::mutex mu;
    bool materialized = false;
    // Type-erased bucket storage: each slot holds a shared_ptr<vector<T>>.
    std::vector<std::shared_ptr<void>> buckets_void;
    std::vector<uint64_t> remote_bytes_per_target;
    /// HB identity of this shuffle's materialization buffers (0 outside a
    /// recording window). Publication point: MaterializeShuffleInPhase.
    int64_t hb_id = hb::AssignWindowId();

    template <typename U>
    std::vector<U> TakeBucket(SparkContext* sc, int p) {
      hb::Consume(hb::ShuffleObject(hb_id));
      hb::RecordAccess(hb::ShuffleObject(hb_id), hb::Access::kRead,
                       "ShuffleState::TakeBucket");
      auto ptr = std::static_pointer_cast<std::vector<U>>(buckets_void[p]);
      std::vector<U> out = ptr ? *ptr : std::vector<U>();
      sc->ChargeTask(p, out.size(), remote_bytes_per_target[p]);
      return out;
    }
  };

  /// Builds a shuffled child of this RDD: records are routed to
  /// `hash(record) % n` (via `hash_fn`). Exposed for reuse by SortBy and the
  /// pair-RDD ops.
  template <typename H>
  Rdd<T> ShuffleBy(H hash_fn, int num_partitions, const std::string& name,
                   PartitionerInfo info) const {
    int n = num_partitions;
    auto* sc = sc_;
    auto parent = node_;
    auto state = std::make_shared<ShuffleState>(n);
    auto compute = [sc, parent, state, hash_fn, n](int p) {
      {
        hb::TrackedLock lock(state->mu);
        if (!state->materialized) {
          auto target = [&](const T& x) {
            // uint64 hash modulo a positive count: provably in [0, n).
            return static_cast<int>(hash_fn(x) % static_cast<uint64_t>(n));
          };
          MaterializeShuffle<T>(sc, parent.get(), state.get(), target);
        }
      }
      return state->template TakeBucket<T>(sc, p);
    };
    return Rdd<T>(sc_, MakeNode<T>(sc_, parent, name, n, true, compute,
                                   std::move(info)));
  }

  /// Runs the map side of a shuffle inside its own cost phase. Caller must
  /// hold `state->mu` and have checked `state->materialized`.
  template <typename U, typename Parent, typename TargetFn>
  static void MaterializeShuffle(SparkContext* sc, Parent* parent,
                                 ShuffleState* state, TargetFn target) {
    sc->BeginPhase();
    MaterializeShuffleInPhase<U>(sc, parent, state, target);
    sc->EndPhase();
  }

  /// The shuffle map side proper: computes parent partitions on the
  /// executor pool, buckets records with `target`, and charges shuffle
  /// metrics. Each map task writes into its own per-source staging area;
  /// buckets are then merged in source-partition order, so bucket contents
  /// are byte-identical to the serial path no matter how tasks interleave.
  template <typename U, typename Parent, typename TargetFn>
  static void MaterializeShuffleInPhase(SparkContext* sc, Parent* parent,
                                        ShuffleState* state, TargetFn target) {
    int n = static_cast<int>(state->buckets_void.size());
    int np = parent->num_partitions();
    std::vector<std::vector<std::vector<U>>> staged(
        static_cast<size_t>(np));
    std::vector<std::vector<uint64_t>> staged_remote(
        static_cast<size_t>(np));
    sc->RunParallel(np, [&](int q) {
      auto in = parent->GetPartition(q);
      sc->ChargeTask(q, in->size(), 0);
      int src_exec = sc->ExecutorOf(q);
      auto& buckets = staged[static_cast<size_t>(q)];
      auto& remote = staged_remote[static_cast<size_t>(q)];
      buckets.resize(static_cast<size_t>(n));
      remote.assign(static_cast<size_t>(n), 0);
      uint64_t records = 0, bytes_total = 0, remote_bytes = 0;
      uint64_t local_reads = 0, remote_reads = 0;
      for (const U& x : *in) {
        int t = target(x);
        assert(t >= 0 && t < n && "bucket index out of range");
        uint64_t bytes = EstimateSize(x);
        ++records;
        bytes_total += bytes;
        if (sc->ExecutorOf(t) != src_exec) {
          remote_bytes += bytes;
          ++remote_reads;
          remote[static_cast<size_t>(t)] += bytes;
        } else {
          ++local_reads;
        }
        buckets[static_cast<size_t>(t)].push_back(x);
      }
      sc->ChargeShuffleWrite(q, records, bytes_total, remote_bytes,
                             local_reads, remote_reads);
    });
    for (int b = 0; b < n; ++b) {
      size_t total = 0;
      for (int q = 0; q < np; ++q) {
        total += staged[static_cast<size_t>(q)][static_cast<size_t>(b)]
                     .size();
      }
      auto merged = std::make_shared<std::vector<U>>();
      merged->reserve(total);
      for (int q = 0; q < np; ++q) {
        auto& part = staged[static_cast<size_t>(q)][static_cast<size_t>(b)];
        for (U& x : part) merged->push_back(std::move(x));
      }
      state->buckets_void[static_cast<size_t>(b)] = merged;
    }
    for (int q = 0; q < np; ++q) {
      for (int t = 0; t < n; ++t) {
        state->remote_bytes_per_target[static_cast<size_t>(t)] +=
            staged_remote[static_cast<size_t>(q)][static_cast<size_t>(t)];
      }
    }
    state->materialized = true;
    // Publication barrier: the merged buckets become visible to readers
    // only through TakeBucket's Consume edge. A read path that skipped the
    // barrier would surface as RC002 on this object.
    hb::RecordAccess(hb::ShuffleObject(state->hb_id), hb::Access::kWrite,
                     "MaterializeShuffle");
    hb::Publish(hb::ShuffleObject(state->hb_id));
  }

 private:
  enum class JoinKind { kInner, kLeftOuter };

  template <typename W, typename K, typename V, JoinKind kKind>
  auto JoinImpl(const Rdd<std::pair<K, W>>& other, int num_partitions) const {
    int n = num_partitions > 0
                ? num_partitions
                : std::max(node_->num_partitions(),
                           other.node()->num_partitions());
    // Co-partitioned fast path: equal partitioners mean key-collocated data.
    bool copartitioned = node_->partitioner() && other.node()->partitioner() &&
                         *node_->partitioner() == *other.node()->partitioner();
    auto left = copartitioned ? *this : PartitionByKey(n);
    auto right = copartitioned ? other : other.PartitionByKey(n);
    int out_n = copartitioned ? node_->num_partitions() : n;

    auto* sc = sc_;
    auto ln = left.node();
    auto rn = right.node();
    using OutVal =
        std::conditional_t<kKind == JoinKind::kInner, std::pair<V, W>,
                           std::pair<V, std::optional<W>>>;
    using Out = std::pair<K, OutVal>;
    auto compute = [sc, ln, rn](int p) {
      auto l = ln->GetPartition(p);
      auto r = rn->GetPartition(p);
      sc->ChargeCompute(p, l->size() + r->size());
      std::unordered_map<K, std::vector<W>, ValueHasher> build;
      for (const auto& kv : *r) build[kv.first].push_back(kv.second);
      std::vector<Out> out;
      uint64_t comparisons = 0;
      for (const auto& kv : *l) {
        auto it = build.find(kv.first);
        ++comparisons;
        if (it != build.end()) {
          comparisons += it->second.size() - 1;
          for (const W& w : it->second) {
            if constexpr (kKind == JoinKind::kInner) {
              out.emplace_back(kv.first, std::pair<V, W>(kv.second, w));
            } else {
              out.emplace_back(kv.first, std::pair<V, std::optional<W>>(
                                             kv.second, w));
            }
          }
        } else if constexpr (kKind == JoinKind::kLeftOuter) {
          out.emplace_back(kv.first, std::pair<V, std::optional<W>>(
                                         kv.second, std::nullopt));
        }
      }
      sc->ChargeJoinComparisons(comparisons);
      return out;
    };
    auto node = MakeNode<Out>(sc_, ln,
                              kKind == JoinKind::kInner ? "Join"
                                                        : "LeftOuterJoin",
                              out_n, false, compute,
                              PartitionerInfo{"hash", out_n, 0});
    node->AddParent(rn);
    return Rdd<Out>(sc_, node);
  }

  template <typename U, typename ComputeFn>
  Rdd<U> MakeChild(const std::string& name, int num_partitions,
                   bool is_shuffle, ComputeFn compute,
                   std::optional<PartitionerInfo> info) const {
    auto node = MakeNode<U>(sc_, node_, name, num_partitions, is_shuffle,
                            std::move(compute), std::move(info));
    return Rdd<U>(sc_, node);
  }

  template <typename U, typename ParentPtr, typename ComputeFn>
  static std::shared_ptr<RddNode<U>> MakeNode(
      SparkContext* sc, ParentPtr parent, const std::string& name,
      int num_partitions, bool is_shuffle, ComputeFn compute,
      std::optional<PartitionerInfo> info) {
    auto node = std::make_shared<RddNode<U>>(sc->NextNodeId(), name,
                                             num_partitions, is_shuffle,
                                             std::move(compute));
    node->SetCached(sc->config().retain_uncached_rdds);
    node->AddParent(parent);
    if (info) node->set_partitioner(std::move(*info));
    return node;
  }

  static void AppendDebug(const RddNodeBase* node, int depth,
                          std::string* out) {
    out->append(static_cast<size_t>(depth) * 2, ' ');
    out->append(node->name());
    out->append(" [" + std::to_string(node->num_partitions()) + " parts" +
                (node->is_shuffle() ? ", shuffle" : "") + "]\n");
    for (const auto& p : node->parents()) {
      AppendDebug(p.get(), depth + 1, out);
    }
  }

  int ResolvePartitions(int requested) const {
    if (requested > 0) return requested;
    return node_ ? node_->num_partitions() : sc_->config().default_parallelism;
  }

  SparkContext* sc_ = nullptr;
  std::shared_ptr<RddNode<T>> node_;

  template <typename U>
  friend class Rdd;
};

template <typename T>
Rdd<T> Parallelize(SparkContext* sc, std::vector<T> data, int num_partitions) {
  int n = num_partitions > 0 ? num_partitions
                             : sc->config().default_parallelism;
  auto shared = std::make_shared<std::vector<T>>(std::move(data));
  size_t total = shared->size();
  auto compute = [shared, total, n](int p) {
    size_t begin = total * static_cast<size_t>(p) / static_cast<size_t>(n);
    size_t end = total * (static_cast<size_t>(p) + 1) / static_cast<size_t>(n);
    return std::vector<T>(shared->begin() + begin, shared->begin() + end);
  };
  auto node = std::make_shared<RddNode<T>>(sc->NextNodeId(), "Parallelize", n,
                                           false, compute);
  node->SetCached(sc->config().retain_uncached_rdds);
  return Rdd<T>(sc, node);
}

/// Collects a pair RDD into a key -> values multimap (driver side). Used to
/// build broadcast join tables.
template <typename K, typename V>
std::unordered_map<K, std::vector<V>, ValueHasher> CollectAsMultimap(
    const Rdd<std::pair<K, V>>& rdd) {
  std::unordered_map<K, std::vector<V>, ValueHasher> out;
  for (auto& kv : rdd.Collect()) out[kv.first].push_back(kv.second);
  return out;
}

}  // namespace rdfspark::spark

#endif  // RDFSPARK_SPARK_RDD_H_
