#ifndef RDFSPARK_SPARK_LINEAGE_H_
#define RDFSPARK_SPARK_LINEAGE_H_

#include <optional>
#include <string>
#include <vector>

#include "spark/context.h"
#include "spark/rdd.h"
#include "systems/plan/diagnostics.h"

namespace rdfspark::spark {

/// Immutable snapshot of one RDD lineage node taken by LineageGraph::Capture.
/// Everything the lineage rules need is copied out, so the snapshot stays
/// valid after the RDDs themselves are released.
struct LineageNodeInfo {
  int id = 0;
  std::string name;
  int num_partitions = 0;
  /// Wide dependency: this node reads a shuffle of its parents.
  bool is_shuffle = false;
  /// Persist bit at capture time (RddNodeBase::cached).
  bool cached = false;
  /// Bytes held by retained partitions at capture time
  /// (RddNodeBase::RetainedBytes, the shared EstimateSize model).
  uint64_t retained_bytes = 0;
  /// Stage index in the simulated job: max over parents, plus one when this
  /// node reads a shuffle — the lineage-side analogue of the Tier D stage
  /// fold over plan trees. Derived at capture.
  int stage = 0;
  std::optional<PartitionerInfo> partitioner;
  std::vector<int> parents;   ///< Ids of parent nodes, lineage order.
  std::vector<int> children;  ///< Ids of captured consumers (derived).
};

/// A static snapshot of the lineage DAG reachable from one or more RDD
/// roots, taken without computing any partition. This is the lineage-tier
/// counterpart of the plan verifier: rules over the graph predict recompute
/// and shuffle cost before a single task runs.
///
/// Rules (stable ids, rendered in the shared Diagnostic format):
///   LN001  shared uncached lineage — a narrow node consumed by >= 2
///          captured descendants without the persist bit recomputes once
///          per consumer (WARN; never fires under the simulator's default
///          retain-everything configuration).
///   LN002  redundant shuffle — a wide node whose inputs all already carry
///          the shuffle's own partitioner; the exchange moves nothing that
///          is not already in place (WARN).
///   LN003  deep shuffle chain — the longest root-to-sink path crosses >= 4
///          wide dependencies; reports the estimated shuffle count, i.e.
///          the stage-barrier depth of the job (INFO).
class LineageGraph {
 public:
  /// Snapshots the DAG reachable from `roots` (duplicates and shared
  /// sub-lineage are captured once). Nodes are stored sorted by id, so two
  /// captures of the same lineage are identical — the determinism
  /// dataflow_lint depends on.
  static LineageGraph Capture(const std::vector<const RddNodeBase*>& roots);
  static LineageGraph Capture(const RddNodeBase* root);

  /// Nodes sorted by ascending id.
  const std::vector<LineageNodeInfo>& nodes() const { return nodes_; }

  /// Looks a node up by id; nullptr when the id was not captured.
  const LineageNodeInfo* Find(int id) const;

  /// Number of wide (shuffle) nodes in the snapshot.
  int ShuffleCount() const;

  /// Maximum number of wide dependencies crossed on any path from a source
  /// to a sink — the job's stage-barrier depth.
  int MaxShuffleDepth() const;

  /// Runs LN001/LN002/LN003 over the snapshot. Findings are ordered by
  /// node id then rule, deterministically.
  std::vector<systems::plan::Diagnostic> Analyze() const;

  /// Total bytes retained across all captured nodes (Σ retained_bytes).
  uint64_t TotalRetainedBytes() const;

  /// Number of stages in the snapshot (max stage index + 1; 0 when empty).
  int StageCount() const;

  /// Tier D retention rule over the snapshot:
  ///   RS004  cache-retention footprint dominated by a never-reread RDD —
  ///          a cached node with at most one captured consumer holds more
  ///          than half of all retained bytes (above a noise floor); the
  ///          persist buys no recompute savings a narrow recompute would
  ///          not, yet pins the dominant share of executor memory (WARN).
  /// Kept separate from Analyze() so the LN tier stays byte-identical;
  /// dataflow_lint's Tier D pass calls both and merges.
  std::vector<systems::plan::Diagnostic> AnalyzeRetention() const;

  /// Graphviz rendering: wide edges dashed, cached nodes filled, the
  /// partitioner shown on nodes that carry one.
  std::string ToDot() const;

 private:
  std::vector<LineageNodeInfo> nodes_;
};

}  // namespace rdfspark::spark

#endif  // RDFSPARK_SPARK_LINEAGE_H_
