#ifndef RDFSPARK_SPARK_SCHEDULER_H_
#define RDFSPARK_SPARK_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rdfspark::spark {

/// Fixed-size executor thread pool that runs per-partition tasks
/// concurrently — the physical counterpart of the simulated executors.
/// One pool per SparkContext, sized by ClusterConfig::num_executors, so a
/// "4 executor" cluster really computes at most 4 partitions at a time and
/// wall-clock numbers track the simulated stage model instead of being the
/// serial sum of all tasks.
///
/// Scheduling model: any number of batches (parallel-fors) may be in
/// flight at once — one per driver thread, which is how the serving layer
/// runs many queries concurrently on one cluster. Task indices are handed
/// out under the pool mutex; pool workers round-robin across the live
/// batches so no in-flight query starves behind a long one (fair
/// interleaving at partition-task granularity). The closure runs outside
/// the lock. The calling thread participates in its own batch instead of
/// idling, which keeps the latency of a small query bounded by its own
/// work even when the pool is saturated by other batches.
class TaskScheduler {
 public:
  explicit TaskScheduler(int num_threads);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Runs fn(0), ..., fn(count - 1) across the pool and blocks until every
  /// task finished. The first exception thrown by one of this batch's
  /// tasks is rethrown here after the batch drains; concurrent batches
  /// fail independently. Safe to call from several driver threads at once.
  /// Must not be called from a pool worker thread (callers detect that
  /// with InWorkerThread() and run inline instead).
  void ParallelFor(int count, const std::function<void(int)>& fn);

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// True when the calling thread is a pool worker (of any TaskScheduler).
  static bool InWorkerThread();

 private:
  /// One in-flight ParallelFor. Owned by the stack frame of the call;
  /// registered in `batches_` only while tasks remain to hand out or run.
  struct Batch {
    int count = 0;
    int next_index = 0;  ///< Next task to hand out.
    int unfinished = 0;  ///< Tasks handed out or pending, not yet retired.
    const std::function<void(int)>* fn = nullptr;
    std::exception_ptr first_error;
  };

  void WorkerLoop();
  /// Hands out and runs one task of `batch`. Returns false when the batch
  /// has no task left to grab. `lock` is held on entry and exit, released
  /// while the task body runs.
  bool RunOneTaskOf(Batch* batch, std::unique_lock<std::mutex>& lock);
  /// The next batch with tasks to hand out, rotating fairly across the
  /// live batches; null when none has work. Called under the mutex.
  Batch* NextBatchWithWork();

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< Tasks published / shutdown.
  std::condition_variable done_cv_;  ///< Some batch fully drained.

  // All guarded by mu_.
  std::vector<Batch*> batches_;  ///< Live batches, registration order.
  size_t rr_next_ = 0;           ///< Round-robin cursor into batches_.
  int pending_tasks_ = 0;        ///< Tasks not yet handed out, all batches.
  bool stop_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace rdfspark::spark

#endif  // RDFSPARK_SPARK_SCHEDULER_H_
