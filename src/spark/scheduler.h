#ifndef RDFSPARK_SPARK_SCHEDULER_H_
#define RDFSPARK_SPARK_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rdfspark::spark {

/// Fixed-size executor thread pool that runs per-partition tasks
/// concurrently — the physical counterpart of the simulated executors.
/// One pool per SparkContext, sized by ClusterConfig::num_executors, so a
/// "4 executor" cluster really computes at most 4 partitions at a time and
/// wall-clock numbers track the simulated stage model instead of being the
/// serial sum of all tasks.
///
/// Scheduling model: one batch (parallel-for) at a time. Task indices are
/// handed out under the pool mutex, so a worker can never run a task of a
/// batch it did not observe; the closure runs outside the lock. The calling
/// thread participates in the batch instead of idling.
class TaskScheduler {
 public:
  explicit TaskScheduler(int num_threads);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Runs fn(0), ..., fn(count - 1) across the pool and blocks until every
  /// task finished. The first exception thrown by a task is rethrown here
  /// after the batch drains. Must not be called from a pool worker thread
  /// (callers detect that with InWorkerThread() and run inline instead).
  void ParallelFor(int count, const std::function<void(int)>& fn);

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// True when the calling thread is a pool worker (of any TaskScheduler).
  static bool InWorkerThread();

 private:
  void WorkerLoop();
  /// Hands out and runs one task of batch `seq`. Returns false when that
  /// batch has no more tasks to grab. `lock` is held on entry and exit,
  /// released while the task body runs.
  bool RunOneTask(std::unique_lock<std::mutex>& lock, uint64_t seq);

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< New batch published / shutdown.
  std::condition_variable done_cv_;  ///< Batch fully drained.

  // Batch state, all guarded by mu_.
  uint64_t batch_seq_ = 0;
  int batch_count_ = 0;
  int next_index_ = 0;
  int unfinished_ = 0;
  const std::function<void(int)>* batch_fn_ = nullptr;
  std::exception_ptr first_error_;
  bool stop_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace rdfspark::spark

#endif  // RDFSPARK_SPARK_SCHEDULER_H_
