#ifndef RDFSPARK_SPARK_CONTEXT_H_
#define RDFSPARK_SPARK_CONTEXT_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "spark/hb.h"
#include "spark/metrics.h"
#include "spark/size_estimator.h"
#include "spark/tracing.h"

namespace rdfspark::spark {

class TaskScheduler;

/// Shape of the simulated cluster.
struct ClusterConfig {
  int num_executors = 4;
  /// Partition count used when callers do not specify one.
  int default_parallelism = 8;
  /// Threads in the executor pool that physically runs partition tasks:
  /// 0 = one per simulated executor (the default), 1 = serial in-driver
  /// execution (the reference path the scheduler tests compare against).
  int executor_threads = 0;
  /// DataFrame joins broadcast the smaller side when its estimated size is
  /// below this threshold (Spark's spark.sql.autoBroadcastJoinThreshold).
  uint64_t broadcast_threshold_bytes = 10ull << 20;
  /// When true (the default) every RDD retains its computed partitions, as
  /// the simulator always has (iterative engines depend on it). When false
  /// the cluster reproduces Spark's real default: only RDDs marked with
  /// Cache() retain partitions, and lineage shared by several consumers is
  /// recomputed per consumer — the behaviour the lineage analyzer's LN001
  /// rule flags and the recompute-validation tests measure.
  bool retain_uncached_rdds = true;
  CostModel cost;
};

/// Identity of a partitioning scheme. Two RDDs co-partitioned by equal
/// PartitionerInfo can be joined without a shuffle, which is how the
/// simulator expresses the pre-partitioning optimizations several surveyed
/// systems rely on (SparkRDF's dynamic pre-partitioning, the hybrid engine's
/// partitioning awareness).
struct PartitionerInfo {
  std::string kind;  ///< e.g. "hash", "hash-subject", "range".
  int num_partitions = 0;
  uint64_t seed = 0;

  bool operator==(const PartitionerInfo&) const = default;
};

/// A value replicated to every executor. Reading it is always a local read;
/// creating it charges network volume proportional to cluster size.
template <typename T>
class Broadcast {
 public:
  explicit Broadcast(std::shared_ptr<const T> value, int64_t hb_id = 0)
      : value_(std::move(value)), hb_id_(hb_id) {}
  const T& value() const {
    // Publication edge: reading the replicated value orders this task
    // after MakeBroadcast's publish (per-thread deduped, so the hot join
    // loop records one logical event, not one per probe).
    hb::Consume(hb::BroadcastObject(hb_id_));
    hb::RecordAccess(hb::BroadcastObject(hb_id_), hb::Access::kRead,
                     "Broadcast::value");
    return *value_;
  }

 private:
  std::shared_ptr<const T> value_;
  int64_t hb_id_ = 0;
};

/// Entry point to the simulated cluster: owns the configuration, the
/// metrics and the executor thread pool, assigns partitions to executors,
/// and provides the phase/cost accounting hooks the RDD/DataFrame layers
/// call into.
///
/// Cost accounting model: work is grouped into *phases* (one per shuffle
/// materialization plus one per action). Within a phase, each charge lands on
/// the executor that owns the charged partition; when the phase ends, the
/// busiest executor's time is added to `simulated_ms`. This reproduces the
/// barrier semantics of Spark stages: narrow chains pipeline inside one
/// phase, shuffles serialize phases.
///
/// Thread-safety contract: phases are tracked per thread. BeginPhase/
/// EndPhase nest on the thread that calls them; RunParallel propagates the
/// caller's current phase to the pool workers, so concurrent task charges
/// land in the phase of the action that spawned them while a nested phase
/// opened inside a task (a lazily materialized shuffle) stays private to
/// that task's thread. Per-executor busy time accumulates in integer
/// nanoseconds, which makes `simulated_ms` bit-identical for any thread
/// interleaving — and identical to the serial (executor_threads = 1) path.
class SparkContext {
 public:
  explicit SparkContext(ClusterConfig config = ClusterConfig());
  ~SparkContext();

  SparkContext(const SparkContext&) = delete;
  SparkContext& operator=(const SparkContext&) = delete;

  const ClusterConfig& config() const { return config_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  /// Span recorder for this cluster (disabled by default; enabling it is
  /// the only switch — all instrumentation sites check `enabled()`).
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  /// Executor owning partition `partition` (round-robin placement).
  /// Partition ids are non-negative by construction (hash-derived bucket
  /// indices are reduced modulo a positive count before they get here);
  /// a negative id would silently land on a negative "executor".
  int ExecutorOf(int partition) const {
    assert(partition >= 0 && "partition ids must be non-negative");
    return partition % config_.num_executors;
  }

  /// Unique id for a new RDD node.
  int NextNodeId() {
    return next_node_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Begins/ends a cost phase; see class comment. Nestable, per thread.
  void BeginPhase();
  void EndPhase();

  /// Charges CPU work done while computing `records` records of partition
  /// `partition` (no task counted: narrow work pipelines into its stage task).
  void ChargeCompute(int partition, uint64_t records);

  /// Charges a schedulable task on `partition` that consumed `records`
  /// records and pulled `remote_bytes` over the network.
  void ChargeTask(int partition, uint64_t records, uint64_t remote_bytes);

  /// Records an action execution (one job).
  void RecordJob();

  // Centralized metric charge points. The RDD/DataFrame/GraphX layers call
  // these instead of poking `metrics()` fields directly so that every
  // charge reaches all three sinks consistently: the global Metrics, the
  // innermost operator scope (EXPLAIN ANALYZE actuals), and — where a span
  // is meaningful — the tracer. Keep new instrumentation going through
  // here; direct field writes bypass per-operator attribution.

  /// Charges `comparisons` candidate pairs examined by a join.
  void ChargeJoinComparisons(uint64_t comparisons);

  /// Records the map-side write of one source partition into a shuffle:
  /// `records`/`bytes` written in total, `remote_bytes` of which cross
  /// executor boundaries, plus the reader-side locality split
  /// (`local_reads`/`remote_reads` records).
  void ChargeShuffleWrite(int partition, uint64_t records, uint64_t bytes,
                          uint64_t remote_bytes, uint64_t local_reads,
                          uint64_t remote_reads);

  /// Charges partition reads served locally / from other executors.
  void ChargeLocalReads(uint64_t records);
  void ChargeRemoteReads(uint64_t records);

  /// Records one Pregel/fixpoint iteration (emits a superstep span).
  void RecordSuperstep(const char* label = "superstep");

  /// Records `count` graph messages sent by aggregateMessages.
  void RecordMessages(uint64_t count);

  /// Runs fn(0..count-1) on the executor pool, blocking until all tasks
  /// finish. Falls back to an inline serial loop when the pool is disabled
  /// (executor_threads = 1), the batch is trivial, or the caller is itself
  /// a pool worker (nested parallelism runs inline; see TaskScheduler).
  /// Workers inherit the caller's current cost phase.
  void RunParallel(int count, const std::function<void(int)>& fn);

  /// Accounts the volume and time of replicating `bytes` to every executor
  /// (tree distribution: every executor receives the payload once, in
  /// parallel, so the time cost is one network transfer).
  void ChargeBroadcastBytes(uint64_t bytes);

  /// Wraps `value` into a Broadcast, charging replication traffic.
  template <typename T>
  Broadcast<T> MakeBroadcast(T value) {
    ChargeBroadcastBytes(EstimateSize(value));
    int64_t hb_id = hb::AssignWindowId();
    hb::RecordAccess(hb::BroadcastObject(hb_id), hb::Access::kWrite,
                     "MakeBroadcast");
    hb::Publish(hb::BroadcastObject(hb_id));
    return Broadcast<T>(std::make_shared<const T>(std::move(value)), hb_id);
  }

  /// Stable HB identity of this context (metrics counters, executor pool).
  int64_t HbId() const { return hb::StableId(&hb_id_); }

  /// Per-phase accumulator: busy nanoseconds per executor. Tasks of one
  /// phase add concurrently (relaxed atomics — integer addition commutes,
  /// so totals are interleaving-independent).
  struct Phase {
    explicit Phase(int num_executors);
    /// Adds `ns` to the executor's busy time; returns the executor's busy
    /// time *before* the add — the task's start offset within the phase,
    /// which is what the tracer plots task spans at.
    uint64_t Add(int executor, uint64_t ns) {
      return busy_ns[static_cast<size_t>(executor)].fetch_add(
          ns, std::memory_order_relaxed);
    }
    uint64_t Busy(int executor) const {
      return busy_ns[static_cast<size_t>(executor)].load(
          std::memory_order_relaxed);
    }
    uint64_t MaxNanos() const;
    void Reset();

    std::vector<std::atomic<uint64_t>> busy_ns;
    /// Simulated-time origin of the phase (simulated_ms when it began);
    /// task spans plot at start_ns + per-executor busy offset.
    uint64_t start_ns = 0;
  };

 private:
  /// The innermost phase this thread has open for this context; falls back
  /// to the root accumulator (charges outside any phase, never folded).
  Phase* CurrentPhase() const;

  ClusterConfig config_;
  Metrics metrics_;
  Tracer tracer_;
  std::atomic<int> next_node_id_{0};
  mutable std::atomic<int64_t> hb_id_{0};  ///< Lazily assigned stable id.

  std::unique_ptr<Phase> root_phase_;
  std::once_flag scheduler_once_;  ///< Guards the lazy pool creation:
                                   ///< concurrent driver threads (the
                                   ///< serving layer) may race to the
                                   ///< first RunParallel.
  std::unique_ptr<TaskScheduler> scheduler_;  ///< Lazily created pool.
};

}  // namespace rdfspark::spark

#endif  // RDFSPARK_SPARK_CONTEXT_H_
