#ifndef RDFSPARK_SPARK_CONTEXT_H_
#define RDFSPARK_SPARK_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "spark/metrics.h"
#include "spark/size_estimator.h"

namespace rdfspark::spark {

/// Shape of the simulated cluster.
struct ClusterConfig {
  int num_executors = 4;
  /// Partition count used when callers do not specify one.
  int default_parallelism = 8;
  /// DataFrame joins broadcast the smaller side when its estimated size is
  /// below this threshold (Spark's spark.sql.autoBroadcastJoinThreshold).
  uint64_t broadcast_threshold_bytes = 10ull << 20;
  CostModel cost;
};

/// Identity of a partitioning scheme. Two RDDs co-partitioned by equal
/// PartitionerInfo can be joined without a shuffle, which is how the
/// simulator expresses the pre-partitioning optimizations several surveyed
/// systems rely on (SparkRDF's dynamic pre-partitioning, the hybrid engine's
/// partitioning awareness).
struct PartitionerInfo {
  std::string kind;  ///< e.g. "hash", "hash-subject", "range".
  int num_partitions = 0;
  uint64_t seed = 0;

  bool operator==(const PartitionerInfo&) const = default;
};

/// A value replicated to every executor. Reading it is always a local read;
/// creating it charges network volume proportional to cluster size.
template <typename T>
class Broadcast {
 public:
  explicit Broadcast(std::shared_ptr<const T> value)
      : value_(std::move(value)) {}
  const T& value() const { return *value_; }

 private:
  std::shared_ptr<const T> value_;
};

/// Entry point to the simulated cluster: owns the configuration and the
/// metrics, assigns partitions to executors, and provides the phase/cost
/// accounting hooks the RDD/DataFrame layers call into.
///
/// Cost accounting model: work is grouped into *phases* (one per shuffle
/// materialization plus one per action). Within a phase, each charge lands on
/// the executor that owns the charged partition; when the phase ends, the
/// busiest executor's time is added to `simulated_ms`. This reproduces the
/// barrier semantics of Spark stages: narrow chains pipeline inside one
/// phase, shuffles serialize phases.
class SparkContext {
 public:
  explicit SparkContext(ClusterConfig config = ClusterConfig());

  SparkContext(const SparkContext&) = delete;
  SparkContext& operator=(const SparkContext&) = delete;

  const ClusterConfig& config() const { return config_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  /// Executor owning partition `partition` (round-robin placement).
  int ExecutorOf(int partition) const {
    return partition % config_.num_executors;
  }

  /// Unique id for a new RDD node.
  int NextNodeId() { return next_node_id_++; }

  /// Begins/ends a cost phase; see class comment. Nestable.
  void BeginPhase();
  void EndPhase();

  /// Charges CPU work done while computing `records` records of partition
  /// `partition` (no task counted: narrow work pipelines into its stage task).
  void ChargeCompute(int partition, uint64_t records);

  /// Charges a schedulable task on `partition` that consumed `records`
  /// records and pulled `remote_bytes` over the network.
  void ChargeTask(int partition, uint64_t records, uint64_t remote_bytes);

  /// Records an action execution (one job).
  void RecordJob() { ++metrics_.jobs; }

  /// Accounts the volume and time of replicating `bytes` to every executor
  /// (tree distribution: every executor receives the payload once, in
  /// parallel, so the time cost is one network transfer).
  void ChargeBroadcastBytes(uint64_t bytes) {
    metrics_.broadcast_bytes +=
        bytes * static_cast<uint64_t>(config_.num_executors > 1
                                          ? config_.num_executors - 1
                                          : 0);
    if (config_.num_executors > 1) {
      metrics_.simulated_ms +=
          config_.cost.net_ns_per_byte * static_cast<double>(bytes) / 1e6;
    }
  }

  /// Wraps `value` into a Broadcast, charging replication traffic.
  template <typename T>
  Broadcast<T> MakeBroadcast(T value) {
    ChargeBroadcastBytes(EstimateSize(value));
    return Broadcast<T>(std::make_shared<const T>(std::move(value)));
  }

 private:
  ClusterConfig config_;
  Metrics metrics_;
  int next_node_id_ = 0;

  // Per-executor busy nanoseconds for the current phase, plus a stack for
  // nested phases (a shuffle materialized lazily inside an action).
  std::vector<double> executor_ns_;
  std::vector<std::vector<double>> phase_stack_;
};

}  // namespace rdfspark::spark

#endif  // RDFSPARK_SPARK_CONTEXT_H_
