#ifndef RDFSPARK_SPARK_HB_H_
#define RDFSPARK_SPARK_HB_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

/// Lint Tier C: a deterministic happens-before (HB) race and determinism
/// checker for the simulated runtime.
///
/// TSan reports a race only when the racy interleaving actually fires on a
/// given run. This engine instead records *logical* accesses to the shared
/// objects of the runtime (RDD partition cache slots, the persist flag,
/// shuffle materialization buffers, IdTable batch buffers, Dictionary
/// tables, the serving PlanCache, metrics counters) together with the
/// synchronization the code *declares* — fork/join structure of
/// SparkContext::RunParallel batches, shuffle/broadcast/Freeze publication
/// barriers, call_once pool init, and lock acquisitions — and then decides
/// orderedness from that declared structure alone. Two conflicting
/// accesses race iff no structural HB path orders them, their locksets are
/// disjoint, and they are not both atomic. Because every task of a batch
/// gets its own logical segment even when the pool is disabled, the exact
/// same findings fire at --threads=1 as at --threads=8: detection is a
/// property of the program, not of the schedule that happened to run.
///
/// Rule catalog (details + fix hints in DESIGN.md):
///   RC001  unsynchronized conflicting access (error)
///   RC002  publication object reached without its barrier (error)
///   RC003  cache eviction / persist-flag write racing pooled reads (error)
///   DT001  order-sensitive accumulator written by unordered tasks (error)
///   DT002  non-commutative merge across unordered partitions (warn)
///   DT003  unordered-container iteration crossing a result boundary (warn)
///
/// All hooks are compiled in permanently and gated on one relaxed atomic
/// flag (the Tracer pattern); a disabled recorder costs one branch per
/// instrumentation site.

namespace rdfspark::systems::plan {
struct Diagnostic;
}  // namespace rdfspark::systems::plan

namespace rdfspark::spark {
class SparkContext;
}  // namespace rdfspark::spark

namespace rdfspark::spark::hb {

/// What kind of logical shared object an event touched. The kind picks the
/// diagnostic rule when a pair of accesses turns out unordered.
enum class ObjectKind : uint8_t {
  kCacheSlot,      ///< One RddNode partition cache slot.
  kCacheFlag,      ///< RddNodeBase's persist bit (cached_).
  kShuffleBuffer,  ///< One ShuffleState's buckets (publication object).
  kBatchBuffer,    ///< IdTable sub-batches handed across partitions.
  kDictionary,     ///< One rdf::Dictionary's tables.
  kPlanCache,      ///< One serving::PlanCache's LRU state.
  kMetrics,        ///< A context's global metrics counters.
  kPoolInit,       ///< A context's lazily created executor pool.
  kBroadcast,      ///< One Broadcast value (publication object).
  kAccumulator,    ///< Order-sensitive shared accumulator (DT001).
  kContainer,      ///< Unordered container with an iteration boundary.
};

const char* ObjectKindName(ObjectKind kind);

/// Identity of a logical shared object: kind plus up to two integers
/// (node id, partition, instance id...). Pointer values never appear here —
/// names must be identical across runs and thread counts.
struct ObjectId {
  ObjectKind kind = ObjectKind::kCacheSlot;
  int64_t a = 0;
  int64_t b = 0;
  bool operator==(const ObjectId&) const = default;
};

/// Deterministic display name, e.g. "rdd#4.slot[2]" or "dictionary#1".
std::string ObjectName(const ObjectId& obj);

inline ObjectId CacheSlotObject(int node_id, int partition) {
  return {ObjectKind::kCacheSlot, node_id, partition};
}
inline ObjectId CacheFlagObject(int node_id) {
  return {ObjectKind::kCacheFlag, node_id, 0};
}
inline ObjectId ShuffleObject(int64_t shuffle_id) {
  return {ObjectKind::kShuffleBuffer, shuffle_id, 0};
}
inline ObjectId BatchBufferObject(int64_t buffer_id, int partition) {
  return {ObjectKind::kBatchBuffer, buffer_id, partition};
}
inline ObjectId DictionaryObject(int64_t instance_id) {
  return {ObjectKind::kDictionary, instance_id, 0};
}
inline ObjectId PlanCacheObject(int64_t instance_id) {
  return {ObjectKind::kPlanCache, instance_id, 0};
}
inline ObjectId MetricsObject(int64_t context_id) {
  return {ObjectKind::kMetrics, context_id, 0};
}
inline ObjectId PoolInitObject(int64_t context_id) {
  return {ObjectKind::kPoolInit, context_id, 0};
}
inline ObjectId BroadcastObject(int64_t broadcast_id) {
  return {ObjectKind::kBroadcast, broadcast_id, 0};
}
inline ObjectId AccumulatorObject(int64_t id) {
  return {ObjectKind::kAccumulator, id, 0};
}
inline ObjectId ContainerObject(int64_t id) {
  return {ObjectKind::kContainer, id, 0};
}

/// How the object was accessed. Two accesses conflict when at least one is
/// a write; a pair where both sides are atomic is synchronization by
/// construction and never reported.
enum class Access : uint8_t { kRead, kWrite, kAtomicRead, kAtomicWrite };

const char* AccessName(Access access);

/// Extra semantics of the access site, used by rule selection.
enum SiteFlag : uint8_t {
  kSiteNone = 0,
  kSiteEviction = 1,     ///< Uncache / EvictPartition / DropRetained.
  kSiteMerge = 2,        ///< Merges a per-task partial into a shared total.
  kSiteCommutative = 4,  ///< ...and the merge commutes (never DT002).
  kSiteIteration = 8,    ///< Iterates an unordered container (DT003).
};

/// Global enabled bit, readable with one relaxed load so disabled hooks are
/// effectively free on hot paths.
inline std::atomic<bool> g_enabled{false};
inline bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

/// The process-wide recorder. One instance serves every SparkContext,
/// Dictionary and PlanCache (several of those objects have no path to a
/// context). Thread-safe: structure mutations take one mutex, events go to
/// per-thread buffers.
///
/// Usage window: Reset() + Enable() on a quiescent process, run the
/// workload, Analyze() (+ Disable()). Reset must not run concurrently with
/// instrumented work — callers own that fence (the lint tools reset
/// between cells on the driver with no tasks in flight).
class Recorder {
 public:
  static Recorder& Get();

  void Enable() { g_enabled.store(true, std::memory_order_relaxed); }
  void Disable() { g_enabled.store(false, std::memory_order_relaxed); }
  bool enabled() const { return Enabled(); }

  /// Discards all segments, events, publications and window ids; bumps the
  /// generation so every thread lazily re-initializes its local state.
  void Reset();

  // -- Structure hooks (used via the RAII scopes below). ------------------

  /// Declares a fork of `count` logical tasks off the calling thread's
  /// current segment. Returns a batch handle (-1 when disabled).
  int BeginBatch(int count);
  /// Enters logical task `index` of `batch` on this thread; returns the
  /// segment to restore on exit.
  int EnterTask(int batch, uint64_t gen, int index);
  /// Leaves the task, recording its final segment as a join predecessor.
  void ExitTask(int batch, uint64_t gen, int index, int restore_segment);
  /// Joins the batch: the caller's next segment succeeds every task.
  void EndBatch(int batch, uint64_t gen);

  /// Detaches the thread onto a fresh root segment (a lint cell, a serving
  /// request): events recorded under different roots are mutually
  /// unordered unless a declared edge connects them. Returns the previous
  /// segment for EndRoot.
  int BeginRoot();
  void EndRoot(int restore_segment);

  /// Declared lock acquisitions; the lock id is only compared for
  /// intersection, never printed, so the mutex address is a fine id.
  void LockAcquired(uintptr_t lock_id);
  void LockReleased(uintptr_t lock_id);

  /// Publication barrier: Publish marks the caller's segment as the
  /// publication point of `obj`; a later Consume orders the consuming
  /// segment after it. Consume without a prior Publish is a no-op — the
  /// unordered accesses it fails to order then surface as RC002.
  void Publish(const ObjectId& obj);
  void Consume(const ObjectId& obj);

  // -- Event hook. --------------------------------------------------------

  /// Records one access. `site` must be a string literal (stored by
  /// pointer, compared by content).
  void Record(const ObjectId& obj, Access access, const char* site,
              uint8_t flags = kSiteNone);

  // -- Analysis. -----------------------------------------------------------

  /// Pairwise HB verdict over everything recorded since Reset. Findings are
  /// deduplicated by (rule, object, site pair) and sorted, so the result is
  /// byte-identical across runs and thread counts.
  std::vector<systems::plan::Diagnostic> Analyze();

  /// Never-reset id source for long-lived instances (dictionaries, plan
  /// caches, contexts); assignment order is construction/first-use order.
  static int64_t NextStableId();

  /// Window-scoped id source (reset by Reset) for per-run objects such as
  /// ShuffleStates and Broadcasts; returns 0 while disabled, so objects
  /// born outside a window never alias a tracked one that has writes.
  int64_t NextWindowId();

  uint64_t generation() const {
    return gen_.load(std::memory_order_acquire);
  }

  /// Introspection for tests.
  size_t SegmentCountForTest();
  size_t EventCountForTest();

 private:
  Recorder() = default;

  std::atomic<uint64_t> gen_{1};
};

// -- Convenience wrappers (all free when disabled). ------------------------

inline void RecordAccess(const ObjectId& obj, Access access, const char* site,
                         uint8_t flags = kSiteNone) {
  if (Enabled()) Recorder::Get().Record(obj, access, site, flags);
}

/// A per-task partial merged into a shared total. Commutative merges (e.g.
/// relaxed counter adds) are recorded but can never fire; non-commutative
/// ones fire DT002 when the merging segments are unordered.
inline void RecordMerge(const ObjectId& obj, const char* site,
                        bool commutative) {
  if (Enabled()) {
    Recorder::Get().Record(
        obj, Access::kAtomicWrite, site,
        static_cast<uint8_t>(kSiteMerge |
                             (commutative ? kSiteCommutative : kSiteNone)));
  }
}

/// Iteration of an unordered container whose output crosses a result or
/// trace boundary (DT003 when unordered segments populated it).
inline void RecordUnorderedIteration(const ObjectId& obj, const char* site) {
  if (Enabled()) {
    Recorder::Get().Record(obj, Access::kRead, site, kSiteIteration);
  }
}

inline void Publish(const ObjectId& obj) {
  if (Enabled()) Recorder::Get().Publish(obj);
}
inline void Consume(const ObjectId& obj) {
  if (Enabled()) Recorder::Get().Consume(obj);
}

/// Assigns a window id to a newly constructed per-run object (0 while the
/// recorder is disabled).
inline int64_t AssignWindowId() {
  return Enabled() ? Recorder::Get().NextWindowId() : 0;
}

/// Lazily assigns a stable instance id (for Dictionary / PlanCache /
/// SparkContext members declared as std::atomic<int64_t>{0}).
inline int64_t StableId(std::atomic<int64_t>* slot) {
  int64_t id = slot->load(std::memory_order_acquire);
  if (id != 0) return id;
  int64_t fresh = Recorder::NextStableId();
  if (slot->compare_exchange_strong(id, fresh, std::memory_order_acq_rel)) {
    return fresh;
  }
  return id;  // Another thread won the assignment.
}

// -- RAII scopes. ----------------------------------------------------------

/// Fork/join of one RunParallel batch, created on the driving thread.
class BatchScope {
 public:
  explicit BatchScope(int count) {
    if (Enabled()) {
      gen_ = Recorder::Get().generation();
      handle_ = Recorder::Get().BeginBatch(count);
    }
  }
  ~BatchScope() {
    if (handle_ >= 0) Recorder::Get().EndBatch(handle_, gen_);
  }
  BatchScope(const BatchScope&) = delete;
  BatchScope& operator=(const BatchScope&) = delete;

  int handle() const { return handle_; }
  uint64_t gen() const { return gen_; }

 private:
  int handle_ = -1;
  uint64_t gen_ = 0;
};

/// One logical task of a batch, entered on whichever thread runs it.
class TaskScope {
 public:
  TaskScope(const BatchScope& batch, int index) {
    if (batch.handle() >= 0) {
      handle_ = batch.handle();
      gen_ = batch.gen();
      index_ = index;
      restore_ = Recorder::Get().EnterTask(handle_, gen_, index_);
    }
  }
  ~TaskScope() {
    if (handle_ >= 0) {
      Recorder::Get().ExitTask(handle_, gen_, index_, restore_);
    }
  }
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

 private:
  int handle_ = -1;
  uint64_t gen_ = 0;
  int index_ = 0;
  int restore_ = -1;
};

/// A fresh logical root (lint cell, serving request).
class RootScope {
 public:
  RootScope() {
    if (Enabled()) {
      gen_ = Recorder::Get().generation();
      restore_ = Recorder::Get().BeginRoot();
      active_ = true;
    }
  }
  ~RootScope() {
    if (active_ && Recorder::Get().generation() == gen_) {
      Recorder::Get().EndRoot(restore_);
    }
  }
  RootScope(const RootScope&) = delete;
  RootScope& operator=(const RootScope&) = delete;

 private:
  bool active_ = false;
  uint64_t gen_ = 0;
  int restore_ = -1;
};

/// std::lock_guard that also records the acquisition in the thread's
/// lockset. Deleting the declaration removes both the real lock and its
/// record, so a mutation that drops the lock is honestly visible to the
/// checker (scripts/mutation_check.sh relies on this).
class TrackedLock {
 public:
  explicit TrackedLock(std::mutex& mu) : lock_(mu) {
    if (Enabled()) {
      id_ = reinterpret_cast<uintptr_t>(&mu);
      Recorder::Get().LockAcquired(id_);
      tracked_ = true;
    }
  }
  ~TrackedLock() {
    if (tracked_) Recorder::Get().LockReleased(id_);
  }
  TrackedLock(const TrackedLock&) = delete;
  TrackedLock& operator=(const TrackedLock&) = delete;

 private:
  std::lock_guard<std::mutex> lock_;
  uintptr_t id_ = 0;
  bool tracked_ = false;
};

/// RDFSPARK_CHECK_RACES gate (mirrors RDFSPARK_VERIFY_QUERIES): the
/// outermost active check owns the recorder window; nested/concurrent
/// checks (a serving request while the server owns the window) defer to
/// the owner instead of resetting shared state under it.
class ScopedRaceCheck {
 public:
  explicit ScopedRaceCheck(bool active) {
    if (active && !Enabled()) {
      Recorder::Get().Reset();
      Recorder::Get().Enable();
      owner_ = true;
    }
  }
  ~ScopedRaceCheck() {
    if (owner_ && !finished_) Recorder::Get().Disable();
  }
  ScopedRaceCheck(const ScopedRaceCheck&) = delete;
  ScopedRaceCheck& operator=(const ScopedRaceCheck&) = delete;

  bool owner() const { return owner_; }

  /// Analyzes and disables the window (owner only; empty otherwise).
  std::vector<systems::plan::Diagnostic> Finish();

 private:
  bool owner_ = false;
  bool finished_ = false;
};

/// Canonical shared-object exercise for the checker: self-union slot
/// sharing, a shuffle publication, a broadcast read path, and an
/// uncache-vs-pooled-read batch. Zero findings on the clean tree; the
/// RDFSPARK_MUTATE_* builds make it fire RC001/RC003 deterministically at
/// --threads=1 (tools/dataflow_lint's "runtime probe" row and
/// scripts/mutation_check.sh run exactly this).
void RunRuntimeProbe(SparkContext* sc);

}  // namespace rdfspark::spark::hb

/// The per-partition cache slot lock, spelled as a macro so the mutation
/// build RDFSPARK_MUTATE_NO_SLOT_LOCK removes the real mutex AND its
/// lockset record in one stroke — the checker then sees exactly what the
/// mutated program provides, which is the honesty property the mutation
/// validation exercises.
#ifdef RDFSPARK_MUTATE_NO_SLOT_LOCK
#define RDFSPARK_SLOT_LOCK(mu) ((void)sizeof(mu))
#else
#define RDFSPARK_SLOT_LOCK(mu) \
  ::rdfspark::spark::hb::TrackedLock rdfspark_slot_lock_(mu)
#endif

#endif  // RDFSPARK_SPARK_HB_H_
