#include "spark/metrics.h"

#include <sstream>

#include "common/string_util.h"

namespace rdfspark::spark {

Metrics Metrics::operator-(const Metrics& rhs) const {
  Metrics d;
  d.jobs = jobs - rhs.jobs;
  d.stages = stages - rhs.stages;
  d.tasks = tasks - rhs.tasks;
  d.shuffle_records = shuffle_records - rhs.shuffle_records;
  d.shuffle_bytes = shuffle_bytes - rhs.shuffle_bytes;
  d.remote_shuffle_bytes = remote_shuffle_bytes - rhs.remote_shuffle_bytes;
  d.local_read_records = local_read_records - rhs.local_read_records;
  d.remote_read_records = remote_read_records - rhs.remote_read_records;
  d.broadcast_bytes = broadcast_bytes - rhs.broadcast_bytes;
  d.join_comparisons = join_comparisons - rhs.join_comparisons;
  d.records_processed = records_processed - rhs.records_processed;
  d.messages = messages - rhs.messages;
  d.supersteps = supersteps - rhs.supersteps;
  d.simulated_ms = simulated_ms - rhs.simulated_ms;
  return d;
}

Metrics& Metrics::operator+=(const Metrics& rhs) {
  jobs += rhs.jobs;
  stages += rhs.stages;
  tasks += rhs.tasks;
  shuffle_records += rhs.shuffle_records;
  shuffle_bytes += rhs.shuffle_bytes;
  remote_shuffle_bytes += rhs.remote_shuffle_bytes;
  local_read_records += rhs.local_read_records;
  remote_read_records += rhs.remote_read_records;
  broadcast_bytes += rhs.broadcast_bytes;
  join_comparisons += rhs.join_comparisons;
  records_processed += rhs.records_processed;
  messages += rhs.messages;
  supersteps += rhs.supersteps;
  simulated_ms += rhs.simulated_ms;
  return *this;
}

std::string Metrics::ToString() const {
  std::ostringstream os;
  os << "jobs=" << jobs << " stages=" << stages << " tasks=" << tasks << "\n"
     << "shuffle: records=" << shuffle_records
     << " bytes=" << FormatBytes(shuffle_bytes)
     << " remote_bytes=" << FormatBytes(remote_shuffle_bytes) << "\n"
     << "reads: local=" << local_read_records
     << " remote=" << remote_read_records << "\n"
     << "broadcast_bytes=" << FormatBytes(broadcast_bytes)
     << " join_comparisons=" << join_comparisons
     << " records_processed=" << records_processed << "\n"
     << "graph: messages=" << messages << " supersteps=" << supersteps << "\n"
     << "simulated_ms=" << FormatDouble(simulated_ms, 3);
  return os.str();
}

}  // namespace rdfspark::spark
