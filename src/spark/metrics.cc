#include "spark/metrics.h"

#include <sstream>

#include "common/string_util.h"

namespace rdfspark::spark {

namespace {

// Tripwire for the field lists above: adding a field to Metrics without
// appending it to the matching RDFSPARK_METRICS_*_FIELDS list changes this
// sizeof and fails the build here with a pointer at the lists.
#define RDFSPARK_COUNT_ONE(name) +1
constexpr size_t kCounterFields = 0 RDFSPARK_METRICS_COUNTER_FIELDS(
    RDFSPARK_COUNT_ONE);
constexpr size_t kSimTimeFields = 0 RDFSPARK_METRICS_SIMTIME_FIELDS(
    RDFSPARK_COUNT_ONE);
constexpr size_t kHistogramFields = 0 RDFSPARK_METRICS_HISTOGRAM_FIELDS(
    RDFSPARK_COUNT_ONE);
#undef RDFSPARK_COUNT_ONE

static_assert(sizeof(Metrics) == kCounterFields * sizeof(Counter) +
                                     kSimTimeFields * sizeof(SimTime) +
                                     kHistogramFields * sizeof(Histogram),
              "Metrics has a field that is missing from the "
              "RDFSPARK_METRICS_*_FIELDS lists in metrics.h — append it "
              "there so snapshots/deltas/dumps keep covering every field");

}  // namespace

uint64_t Histogram::QuantileUpperBound(double q) const noexcept {
  uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(n) + 0.5);
  if (target == 0) target = 1;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket(b);
    if (seen >= target) {
      uint64_t bound = b == 0 ? 0 : (uint64_t{1} << b) - 1;
      // The true max tightens the top bucket's bound.
      return bound < max_value() ? bound : max_value();
    }
  }
  return max_value();
}

Histogram& Histogram::operator+=(const Histogram& rhs) noexcept {
  for (int b = 0; b < kBuckets; ++b) buckets_[b] += rhs.bucket(b);
  count_ += rhs.count();
  sum_ += rhs.sum();
  max_.UpdateMax(rhs.max_value());
  return *this;
}

Histogram Histogram::operator-(const Histogram& rhs) const noexcept {
  Histogram d;
  for (int b = 0; b < kBuckets; ++b) {
    d.buckets_[b] = bucket(b) - rhs.bucket(b);
  }
  d.count_ = count() - rhs.count();
  d.sum_ = sum() - rhs.sum();
  d.max_ = max_value();  // Max cannot be windowed; see class comment.
  return d;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count() << " mean=" << FormatDouble(Mean(), 1)
     << " p50<=" << QuantileUpperBound(0.5)
     << " p95<=" << QuantileUpperBound(0.95) << " max=" << max_value()
     << " skew=" << FormatDouble(SkewVsMean(), 2);
  return os.str();
}

Metrics Metrics::operator-(const Metrics& rhs) const {
  Metrics d;
#define RDFSPARK_FIELD_SUB(name) d.name = name - rhs.name;
  RDFSPARK_METRICS_COUNTER_FIELDS(RDFSPARK_FIELD_SUB)
  RDFSPARK_METRICS_SIMTIME_FIELDS(RDFSPARK_FIELD_SUB)
  RDFSPARK_METRICS_HISTOGRAM_FIELDS(RDFSPARK_FIELD_SUB)
#undef RDFSPARK_FIELD_SUB
  return d;
}

Metrics& Metrics::operator+=(const Metrics& rhs) {
#define RDFSPARK_FIELD_ADD(name) name += rhs.name;
  RDFSPARK_METRICS_COUNTER_FIELDS(RDFSPARK_FIELD_ADD)
  RDFSPARK_METRICS_SIMTIME_FIELDS(RDFSPARK_FIELD_ADD)
  RDFSPARK_METRICS_HISTOGRAM_FIELDS(RDFSPARK_FIELD_ADD)
#undef RDFSPARK_FIELD_ADD
  return *this;
}

std::string Metrics::ToString() const {
  std::ostringstream os;
  os << "jobs=" << jobs << " stages=" << stages << " tasks=" << tasks << "\n"
     << "shuffle: records=" << shuffle_records
     << " bytes=" << FormatBytes(shuffle_bytes)
     << " remote_bytes=" << FormatBytes(remote_shuffle_bytes) << "\n"
     << "reads: local=" << local_read_records
     << " remote=" << remote_read_records << "\n"
     << "broadcast_bytes=" << FormatBytes(broadcast_bytes)
     << " join_comparisons=" << join_comparisons
     << " records_processed=" << records_processed << "\n"
     << "graph: messages=" << messages << " supersteps=" << supersteps << "\n"
     << "task_duration_ns: " << task_duration_ns.ToString() << "\n"
     << "task_records: " << task_records.ToString() << "\n"
     << "simulated_ms=" << FormatDouble(simulated_ms, 3);
  return os.str();
}

void Metrics::ForEachNumericField(
    const std::function<void(const std::string&, double)>& fn) const {
#define RDFSPARK_FIELD_EMIT(name) \
  fn(#name, static_cast<double>(name.value()));
  RDFSPARK_METRICS_COUNTER_FIELDS(RDFSPARK_FIELD_EMIT)
#undef RDFSPARK_FIELD_EMIT
  fn("simulated_ms", simulated_ms.ms());
#define RDFSPARK_FIELD_EMIT(name)                                          \
  fn(#name ".count", static_cast<double>(name.count()));                   \
  fn(#name ".mean", name.Mean());                                          \
  fn(#name ".p50_upper", static_cast<double>(name.QuantileUpperBound(0.5))); \
  fn(#name ".p95_upper",                                                   \
     static_cast<double>(name.QuantileUpperBound(0.95)));                  \
  fn(#name ".max", static_cast<double>(name.max_value()));                 \
  fn(#name ".skew_vs_mean", name.SkewVsMean());
  RDFSPARK_METRICS_HISTOGRAM_FIELDS(RDFSPARK_FIELD_EMIT)
#undef RDFSPARK_FIELD_EMIT
}

void Metrics::ForEachHistogram(
    const std::function<void(const std::string&, const Histogram&)>& fn)
    const {
#define RDFSPARK_FIELD_EMIT(name) fn(#name, name);
  RDFSPARK_METRICS_HISTOGRAM_FIELDS(RDFSPARK_FIELD_EMIT)
#undef RDFSPARK_FIELD_EMIT
}

}  // namespace rdfspark::spark
