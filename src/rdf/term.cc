#include "rdf/term.h"

#include <cstdlib>

#include "common/hash.h"

namespace rdfspark::rdf {

Term Term::Uri(std::string uri) {
  Term t;
  t.kind_ = TermKind::kUri;
  t.lexical_ = std::move(uri);
  return t;
}

Term Term::Literal(std::string lexical, std::string datatype,
                   std::string lang) {
  Term t;
  t.kind_ = TermKind::kLiteral;
  t.lexical_ = std::move(lexical);
  t.datatype_ = std::move(datatype);
  t.lang_ = std::move(lang);
  return t;
}

Term Term::Blank(std::string label) {
  Term t;
  t.kind_ = TermKind::kBlank;
  t.lexical_ = std::move(label);
  return t;
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        out->push_back(c);
    }
  }
}

}  // namespace

std::string Term::ToNTriples() const {
  std::string out;
  switch (kind_) {
    case TermKind::kUri:
      out.push_back('<');
      out.append(lexical_);
      out.push_back('>');
      break;
    case TermKind::kBlank:
      out.append("_:");
      out.append(lexical_);
      break;
    case TermKind::kLiteral:
      out.push_back('"');
      AppendEscaped(lexical_, &out);
      out.push_back('"');
      if (!lang_.empty()) {
        out.push_back('@');
        out.append(lang_);
      } else if (!datatype_.empty()) {
        out.append("^^<");
        out.append(datatype_);
        out.push_back('>');
      }
      break;
  }
  return out;
}

Result<double> Term::AsNumber() const {
  if (!is_literal()) {
    return Status::InvalidArgument("term is not a literal: " + ToNTriples());
  }
  const char* begin = lexical_.c_str();
  char* end = nullptr;
  double v = std::strtod(begin, &end);
  if (end == begin || *end != '\0') {
    return Status::InvalidArgument("literal is not numeric: " + lexical_);
  }
  return v;
}

std::string Triple::ToNTriples() const {
  return subject.ToNTriples() + " " + predicate.ToNTriples() + " " +
         object.ToNTriples() + " .";
}

uint64_t HashValue(const EncodedTriple& t) {
  return CombineHash64(MixHash64(t.s),
                       CombineHash64(MixHash64(t.p), MixHash64(t.o)));
}

uint64_t EstimateSize(const EncodedTriple&) { return 24; }

}  // namespace rdfspark::rdf
