#include "rdf/rdfs.h"

#include <unordered_set>
#include <vector>

#include "spark/value_hash.h"

namespace rdfspark::rdf {

namespace {

std::optional<TermId> LookupUri(const Dictionary& dict, const char* uri) {
  auto id = dict.Lookup(Term::Uri(uri));
  if (!id.ok()) return std::nullopt;
  return *id;
}

}  // namespace

RdfsResult MaterializeRdfs(TripleStore* store, const RdfsOptions& options) {
  RdfsResult result;
  Dictionary& dict = store->dictionary();
  std::optional<TermId> type = LookupUri(dict, kRdfType);
  std::optional<TermId> sub_class = LookupUri(dict, kRdfsSubClassOf);
  std::optional<TermId> sub_prop = LookupUri(dict, kRdfsSubPropertyOf);
  std::optional<TermId> domain = LookupUri(dict, kRdfsDomain);
  std::optional<TermId> range = LookupUri(dict, kRdfsRange);
  // rdf:type may be absent from raw data but is needed to state inferences.
  TermId type_id = type ? *type : dict.Encode(Term::Uri(kRdfType));

  std::unordered_set<EncodedTriple, spark::ValueHasher> known(
      store->triples().begin(), store->triples().end());

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::vector<EncodedTriple> fresh;
    auto emit = [&](TermId s, TermId p, TermId o) {
      EncodedTriple t{s, p, o};
      if (known.insert(t).second) fresh.push_back(t);
    };

    if (options.sub_class_of && sub_class) {
      // rdfs11: (a subClassOf b), (b subClassOf c) => (a subClassOf c).
      auto sc = store->Match({std::nullopt, *sub_class, std::nullopt});
      for (const auto& ab : sc) {
        for (const auto& bc :
             store->Match({ab.o, *sub_class, std::nullopt})) {
          emit(ab.s, *sub_class, bc.o);
        }
      }
      // rdfs9: (x type a), (a subClassOf b) => (x type b).
      for (const auto& ab : sc) {
        for (const auto& xa : store->Match({std::nullopt, type_id, ab.s})) {
          emit(xa.s, type_id, ab.o);
        }
      }
    }
    if (options.sub_property_of && sub_prop) {
      // rdfs5: transitivity of subPropertyOf.
      auto sp = store->Match({std::nullopt, *sub_prop, std::nullopt});
      for (const auto& ab : sp) {
        for (const auto& bc : store->Match({ab.o, *sub_prop, std::nullopt})) {
          emit(ab.s, *sub_prop, bc.o);
        }
      }
      // rdfs7: (x p y), (p subPropertyOf q) => (x q y).
      for (const auto& pq : sp) {
        for (const auto& xy : store->Match({std::nullopt, pq.s, std::nullopt})) {
          emit(xy.s, pq.o, xy.o);
        }
      }
    }
    if (options.domain && domain) {
      // rdfs2: (p domain c), (x p y) => (x type c).
      for (const auto& pc : store->Match({std::nullopt, *domain, std::nullopt})) {
        for (const auto& xy : store->Match({std::nullopt, pc.s, std::nullopt})) {
          emit(xy.s, type_id, pc.o);
        }
      }
    }
    if (options.range && range) {
      // rdfs3: (p range c), (x p y) => (y type c).
      for (const auto& pc : store->Match({std::nullopt, *range, std::nullopt})) {
        for (const auto& xy : store->Match({std::nullopt, pc.s, std::nullopt})) {
          emit(xy.o, type_id, pc.o);
        }
      }
    }

    ++result.iterations;
    if (fresh.empty()) break;
    for (const auto& t : fresh) store->AddEncoded(t);
    result.inferred_triples += fresh.size();
  }
  return result;
}

}  // namespace rdfspark::rdf
