#include "rdf/versioning.h"

#include <unordered_set>

#include "spark/value_hash.h"

namespace rdfspark::rdf {

VersionedStore::VersionedStore() = default;

Status VersionedStore::CheckVersion(int version) const {
  if (version < 0 || version > latest_version()) {
    return Status::OutOfRange("version " + std::to_string(version) +
                              " out of range [0, " +
                              std::to_string(latest_version()) + "]");
  }
  return Status::OK();
}

Result<int> VersionedStore::Commit(const Delta& delta) {
  std::unordered_set<EncodedTriple, spark::ValueHasher> current(
      current_.begin(), current_.end());
  EncodedDelta encoded;
  for (const Triple& t : delta.removed) {
    EncodedTriple full{dict_.Encode(t.subject), dict_.Encode(t.predicate),
                       dict_.Encode(t.object)};
    if (!current.contains(full)) {
      return Status::InvalidArgument("cannot remove absent triple: " +
                                     t.ToNTriples());
    }
    current.erase(full);
    encoded.removed.push_back(full);
  }
  for (const Triple& t : delta.added) {
    EncodedTriple full{dict_.Encode(t.subject), dict_.Encode(t.predicate),
                       dict_.Encode(t.object)};
    if (current.insert(full).second) {
      encoded.added.push_back(full);
    }
  }
  deltas_.push_back(std::move(encoded));
  current_.assign(current.begin(), current.end());
  return latest_version();
}

Result<uint64_t> VersionedStore::SizeAt(int version) const {
  RDFSPARK_RETURN_NOT_OK(CheckVersion(version));
  std::unordered_set<EncodedTriple, spark::ValueHasher> alive;
  for (int v = 0; v < version; ++v) {
    for (const auto& t : deltas_[static_cast<size_t>(v)].removed) {
      alive.erase(t);
    }
    for (const auto& t : deltas_[static_cast<size_t>(v)].added) {
      alive.insert(t);
    }
  }
  return static_cast<uint64_t>(alive.size());
}

Result<TripleStore> VersionedStore::Materialize(int version) const {
  RDFSPARK_RETURN_NOT_OK(CheckVersion(version));
  std::unordered_set<EncodedTriple, spark::ValueHasher> alive;
  for (int v = 0; v < version; ++v) {
    for (const auto& t : deltas_[static_cast<size_t>(v)].removed) {
      alive.erase(t);
    }
    for (const auto& t : deltas_[static_cast<size_t>(v)].added) {
      alive.insert(t);
    }
  }
  TripleStore store;
  for (const auto& t : alive) {
    // Re-encode through the snapshot's own dictionary so the store is
    // self-contained.
    Triple decoded{*dict_.Decode(t.s), *dict_.Decode(t.p), *dict_.Decode(t.o)};
    store.Add(decoded);
  }
  return store;
}

Result<Delta> VersionedStore::DeltaBetween(int from, int to) const {
  RDFSPARK_RETURN_NOT_OK(CheckVersion(from));
  RDFSPARK_RETURN_NOT_OK(CheckVersion(to));
  auto alive_at = [&](int version) {
    std::unordered_set<EncodedTriple, spark::ValueHasher> alive;
    for (int v = 0; v < version; ++v) {
      for (const auto& t : deltas_[static_cast<size_t>(v)].removed) {
        alive.erase(t);
      }
      for (const auto& t : deltas_[static_cast<size_t>(v)].added) {
        alive.insert(t);
      }
    }
    return alive;
  };
  auto a = alive_at(from);
  auto b = alive_at(to);
  Delta out;
  auto decode = [&](const EncodedTriple& t) {
    return Triple{*dict_.Decode(t.s), *dict_.Decode(t.p), *dict_.Decode(t.o)};
  };
  for (const auto& t : b) {
    if (!a.contains(t)) out.added.push_back(decode(t));
  }
  for (const auto& t : a) {
    if (!b.contains(t)) out.removed.push_back(decode(t));
  }
  return out;
}

uint64_t VersionedStore::StoredRecords() const {
  uint64_t n = 0;
  for (const auto& d : deltas_) n += d.added.size() + d.removed.size();
  return n;
}

}  // namespace rdfspark::rdf
