#ifndef RDFSPARK_RDF_GENERATOR_H_
#define RDFSPARK_RDF_GENERATOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "rdf/term.h"

namespace rdfspark::rdf {

/// Namespace prefixes used by the generated data and queries.
inline constexpr char kUbPrefix[] = "http://lubm.example.org/univ-bench.owl#";
inline constexpr char kWdPrefix[] = "http://watdiv.example.org/vocab#";

/// LUBM-style university data generator. The schema (universities,
/// departments, professors, students, courses, publications, plus the
/// degree/membership/advisor predicates) mirrors the LUBM benchmark the
/// surveyed systems were evaluated on; sizes are controlled so the benches
/// can sweep dataset scale deterministically.
struct LubmConfig {
  int num_universities = 1;
  int departments_per_university = 4;
  int professors_per_department = 6;
  int students_per_department = 40;
  int courses_per_department = 8;
  int publications_per_professor = 3;
  uint64_t seed = 42;
};

/// Generates the dataset. Deterministic in the config.
std::vector<Triple> GenerateLubm(const LubmConfig& config);

/// Schema triples (subClassOf / subPropertyOf / domain / range) matching the
/// LUBM-style vocabulary, for RDFS materialization experiments.
std::vector<Triple> LubmSchema();

/// WatDiv-style e-commerce generator: users follow/like with Zipf-skewed
/// popularity, retailers offer products, users write reviews. Produces the
/// skewed predicate-frequency distribution the partitioning assessments
/// need.
struct WatdivConfig {
  int num_users = 200;
  int num_products = 100;
  int num_retailers = 10;
  double follows_per_user = 5.0;
  double likes_per_user = 3.0;
  double reviews_per_user = 1.5;
  double zipf_exponent = 1.0;
  uint64_t seed = 7;
};

std::vector<Triple> GenerateWatdiv(const WatdivConfig& config);

/// Query shapes from the paper's §II.B: star (subject-subject joins),
/// linear (subject-object chains), snowflake (stars joined via a path),
/// complex (combination with a filter).
enum class QueryShape { kStar, kLinear, kSnowflake, kComplex };

const char* QueryShapeName(QueryShape shape);

/// Returns SPARQL text of a query of the given shape over the LUBM-style
/// vocabulary. `size` scales the number of triple patterns (star width /
/// chain length); valid range is clamped to what the vocabulary supports.
std::string LubmShapeQuery(QueryShape shape, int size = 3);

/// All benchmark queries (one per shape) at default size.
std::vector<std::pair<QueryShape, std::string>> LubmQueryMix();

/// Shape queries over the WatDiv-style e-commerce vocabulary (the Zipf-
/// skewed dataset), exercising the same §II.B taxonomy on different data.
std::string WatdivShapeQuery(QueryShape shape);

/// The classic LUBM benchmark queries (Q1..Q14), adapted to this
/// generator's vocabulary and coverage — the workload the surveyed systems
/// (S2RDF, SPARQLGX, S2X, ...) report results on. Several queries rely on
/// RDFS subsumption (Student, Professor, Faculty superclasses), so run them
/// against a store with LubmSchema() materialized via MaterializeRdfs().
/// Returns (name, SPARQL text) pairs.
std::vector<std::pair<std::string, std::string>> LubmBenchmarkQueries();

}  // namespace rdfspark::rdf

#endif  // RDFSPARK_RDF_GENERATOR_H_
