#ifndef RDFSPARK_RDF_DICTIONARY_H_
#define RDFSPARK_RDF_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"

namespace rdfspark::rdf {

/// Bidirectional string <-> integer encoding of RDF terms, keyed on the
/// canonical N-Triples serialization. All surveyed engines operate on the
/// integer side (HAQWA makes this an explicit design point: encoding string
/// values to integers "minimizes data volume and makes processing more
/// efficient").
class Dictionary {
 public:
  Dictionary() = default;

  // The dictionary owns large tables; keep it move-only to avoid accidental
  // deep copies.
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Returns the id for `term`, assigning a fresh one on first sight.
  TermId Encode(const Term& term);

  /// Encodes a whole triple.
  EncodedTriple Encode(const Triple& triple);

  /// Returns the id of `term` if present, without inserting.
  Result<TermId> Lookup(const Term& term) const;

  /// Decodes an id back to its Term.
  Result<Term> Decode(TermId id) const;

  /// Decodes to the canonical N-Triples string.
  Result<std::string> DecodeString(TermId id) const;

  size_t size() const { return terms_.size(); }

  /// Total bytes of the string side (what encoding saves per record).
  uint64_t StringBytes() const { return string_bytes_; }

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<Term> terms_;
  uint64_t string_bytes_ = 0;
};

}  // namespace rdfspark::rdf

#endif  // RDFSPARK_RDF_DICTIONARY_H_
