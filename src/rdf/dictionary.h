#ifndef RDFSPARK_RDF_DICTIONARY_H_
#define RDFSPARK_RDF_DICTIONARY_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"

namespace rdfspark::rdf {

/// Bidirectional string <-> integer encoding of RDF terms, keyed on the
/// canonical N-Triples serialization. All surveyed engines operate on the
/// integer side (HAQWA makes this an explicit design point: encoding string
/// values to integers "minimizes data volume and makes processing more
/// efficient").
///
/// Thread-safety contract: Encode mutates the tables and must stay on the
/// single-threaded load path. Every query-time path (Lookup / Decode /
/// DecodeString) is const and safe to call from any number of threads as
/// long as no Encode runs concurrently. The serving layer enforces that
/// split by calling Freeze() when a dataset goes live: a frozen dictionary
/// asserts (debug builds) on any further Encode, so a query path that
/// accidentally reaches the mutating API fails fast instead of racing.
/// Unknown constants never need Encode at query time — they resolve to
/// NotFound via Lookup, which pattern encoding turns into impossible=true.
class Dictionary {
 public:
  Dictionary() = default;

  // The dictionary owns large tables; keep it move-only to avoid accidental
  // deep copies.
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&& o) noexcept
      : index_(std::move(o.index_)),
        terms_(std::move(o.terms_)),
        string_bytes_(o.string_bytes_),
        frozen_(o.frozen_.load(std::memory_order_relaxed)),
        hb_id_(o.hb_id_.load(std::memory_order_relaxed)) {}
  Dictionary& operator=(Dictionary&& o) noexcept {
    index_ = std::move(o.index_);
    terms_ = std::move(o.terms_);
    string_bytes_ = o.string_bytes_;
    frozen_.store(o.frozen_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    hb_id_.store(o.hb_id_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  /// Returns the id for `term`, assigning a fresh one on first sight.
  /// Must not be called on a frozen dictionary (asserted in debug builds).
  TermId Encode(const Term& term);

  /// Encodes a whole triple.
  EncodedTriple Encode(const Triple& triple);

  /// Returns the id of `term` if present, without inserting.
  Result<TermId> Lookup(const Term& term) const;

  /// Decodes an id back to its Term.
  Result<Term> Decode(TermId id) const;

  /// Decodes to the canonical N-Triples string.
  Result<std::string> DecodeString(TermId id) const;

  /// Marks the dictionary read-only: any later Encode is a programming
  /// error (debug-asserted). Monotonic and thread-safe; const because it
  /// narrows the allowed API without changing observable content — the
  /// serving layer freezes the (const) dataset it is handed. Freeze is
  /// also the dictionary's happens-before publication barrier: the Tier C
  /// checker orders frozen lookups after every load-time Encode through
  /// it, while an unfrozen dictionary shared across threads races (RC001).
  void Freeze() const;
  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

  size_t size() const { return terms_.size(); }

  /// Total bytes of the string side (what encoding saves per record).
  uint64_t StringBytes() const { return string_bytes_; }

 private:
  /// Stable Tier C identity of this instance (lazily assigned on first
  /// instrumented access; moves carry the id with the tables).
  int64_t HbId() const;

  std::unordered_map<std::string, TermId> index_;
  std::vector<Term> terms_;
  uint64_t string_bytes_ = 0;
  mutable std::atomic<bool> frozen_{false};
  mutable std::atomic<int64_t> hb_id_{0};
};

}  // namespace rdfspark::rdf

#endif  // RDFSPARK_RDF_DICTIONARY_H_
