#include "rdf/store.h"

#include <algorithm>
#include <unordered_set>

#include "spark/value_hash.h"

namespace rdfspark::rdf {

EncodedTriple TripleStore::Add(const Triple& triple) {
  EncodedTriple t = dict_.Encode(triple);
  AddEncoded(t);
  return t;
}

void TripleStore::AddEncoded(const EncodedTriple& t) {
  uint32_t idx = static_cast<uint32_t>(triples_.size());
  triples_.push_back(t);
  s_index_[t.s].push_back(idx);
  p_index_[t.p].push_back(idx);
  o_index_[t.o].push_back(idx);
}

void TripleStore::AddAll(const std::vector<Triple>& triples) {
  for (const Triple& t : triples) Add(t);
}

void TripleStore::Dedupe() {
  std::unordered_set<EncodedTriple, spark::ValueHasher> seen;
  std::vector<EncodedTriple> unique;
  unique.reserve(triples_.size());
  for (const EncodedTriple& t : triples_) {
    if (seen.insert(t).second) unique.push_back(t);
  }
  triples_ = std::move(unique);
  s_index_.clear();
  p_index_.clear();
  o_index_.clear();
  for (uint32_t i = 0; i < triples_.size(); ++i) {
    const EncodedTriple& t = triples_[i];
    s_index_[t.s].push_back(i);
    p_index_[t.p].push_back(i);
    o_index_[t.o].push_back(i);
  }
}

bool TripleStore::Contains(const EncodedTriple& t) const {
  auto it = s_index_.find(t.s);
  if (it == s_index_.end()) return false;
  for (uint32_t idx : it->second) {
    if (triples_[idx] == t) return true;
  }
  return false;
}

std::vector<EncodedTriple> TripleStore::Match(const IdPattern& pattern) const {
  auto matches = [&](const EncodedTriple& t) {
    return (!pattern.s || *pattern.s == t.s) &&
           (!pattern.p || *pattern.p == t.p) &&
           (!pattern.o || *pattern.o == t.o);
  };
  // Pick the most selective available index.
  const std::vector<uint32_t>* candidates = nullptr;
  auto consider = [&](const std::unordered_map<TermId, std::vector<uint32_t>>&
                          index,
                      const std::optional<TermId>& key) {
    if (!key) return;
    auto it = index.find(*key);
    static const std::vector<uint32_t> kEmpty;
    const std::vector<uint32_t>* list = it == index.end() ? &kEmpty
                                                          : &it->second;
    if (candidates == nullptr || list->size() < candidates->size()) {
      candidates = list;
    }
  };
  consider(s_index_, pattern.s);
  consider(p_index_, pattern.p);
  consider(o_index_, pattern.o);

  std::vector<EncodedTriple> out;
  if (candidates != nullptr) {
    for (uint32_t idx : *candidates) {
      if (matches(triples_[idx])) out.push_back(triples_[idx]);
    }
  } else {
    for (const EncodedTriple& t : triples_) {
      if (matches(t)) out.push_back(t);
    }
  }
  return out;
}

std::optional<TermId> TripleStore::TypePredicate() const {
  auto id = dict_.Lookup(Term::Uri(kRdfType));
  if (!id.ok()) return std::nullopt;
  return *id;
}

DatasetStatistics TripleStore::ComputeStatistics() const {
  DatasetStatistics stats;
  stats.num_triples = triples_.size();
  stats.distinct_subjects = s_index_.size();
  stats.distinct_predicates = p_index_.size();
  stats.distinct_objects = o_index_.size();
  for (const auto& [p, idxs] : p_index_) {
    stats.predicate_count[p] = idxs.size();
    std::unordered_map<TermId, uint64_t> subjects;
    std::unordered_map<TermId, uint64_t> objects;
    for (uint32_t i : idxs) {
      ++subjects[triples_[i].s];
      ++objects[triples_[i].o];
    }
    stats.predicate_distinct_subjects[p] = subjects.size();
    stats.predicate_distinct_objects[p] = objects.size();
    uint64_t max_s = 0;
    for (const auto& [s, n] : subjects) max_s = std::max(max_s, n);
    uint64_t max_o = 0;
    for (const auto& [o, n] : objects) max_o = std::max(max_o, n);
    stats.predicate_max_subject_degree[p] = max_s;
    stats.predicate_max_object_degree[p] = max_o;
  }
  return stats;
}

}  // namespace rdfspark::rdf
