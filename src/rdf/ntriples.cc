#include "rdf/ntriples.h"

#include <cctype>

#include "common/string_util.h"

namespace rdfspark::rdf {

namespace {

/// Cursor over one line.
struct Cursor {
  std::string_view text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipSpace() {
    while (!AtEnd() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  }
};

Status UnexpectedEnd() {
  return Status::ParseError("unexpected end of N-Triples line");
}

Result<Term> ParseUri(Cursor* c) {
  // Caller saw '<'.
  size_t end = c->text.find('>', c->pos);
  if (end == std::string_view::npos) {
    return Status::ParseError("unterminated URI");
  }
  std::string uri(c->text.substr(c->pos + 1, end - c->pos - 1));
  c->pos = end + 1;
  return Term::Uri(std::move(uri));
}

Result<Term> ParseBlank(Cursor* c) {
  // Caller saw "_".
  if (c->pos + 1 >= c->text.size() || c->text[c->pos + 1] != ':') {
    return Status::ParseError("malformed blank node");
  }
  size_t start = c->pos + 2;
  size_t end = start;
  while (end < c->text.size() &&
         (std::isalnum(static_cast<unsigned char>(c->text[end])) ||
          c->text[end] == '_' || c->text[end] == '-')) {
    ++end;
  }
  if (end == start) return Status::ParseError("empty blank node label");
  std::string label(c->text.substr(start, end - start));
  c->pos = end;
  return Term::Blank(std::move(label));
}

Result<Term> ParseLiteral(Cursor* c) {
  // Caller saw '"'. Unescape until the closing quote.
  std::string lexical;
  size_t i = c->pos + 1;
  bool closed = false;
  while (i < c->text.size()) {
    char ch = c->text[i];
    if (ch == '\\') {
      if (i + 1 >= c->text.size()) return Status::ParseError("bad escape");
      char esc = c->text[i + 1];
      switch (esc) {
        case 'n':
          lexical.push_back('\n');
          break;
        case 't':
          lexical.push_back('\t');
          break;
        case 'r':
          lexical.push_back('\r');
          break;
        case '"':
          lexical.push_back('"');
          break;
        case '\\':
          lexical.push_back('\\');
          break;
        default:
          return Status::ParseError(std::string("unknown escape \\") + esc);
      }
      i += 2;
    } else if (ch == '"') {
      closed = true;
      ++i;
      break;
    } else {
      lexical.push_back(ch);
      ++i;
    }
  }
  if (!closed) return Status::ParseError("unterminated literal");
  c->pos = i;
  // Optional @lang or ^^<datatype>.
  std::string lang;
  std::string datatype;
  if (!c->AtEnd() && c->Peek() == '@') {
    size_t start = c->pos + 1;
    size_t end = start;
    while (end < c->text.size() &&
           (std::isalnum(static_cast<unsigned char>(c->text[end])) ||
            c->text[end] == '-')) {
      ++end;
    }
    if (end == start) return Status::ParseError("empty language tag");
    lang.assign(c->text.substr(start, end - start));
    c->pos = end;
  } else if (c->pos + 1 < c->text.size() && c->Peek() == '^' &&
             c->text[c->pos + 1] == '^') {
    c->pos += 2;
    if (c->AtEnd() || c->Peek() != '<') {
      return Status::ParseError("datatype must be a URI");
    }
    RDFSPARK_ASSIGN_OR_RETURN(Term dt, ParseUri(c));
    datatype = dt.lexical();
  }
  return Term::Literal(std::move(lexical), std::move(datatype),
                       std::move(lang));
}

Result<Term> ParseTerm(Cursor* c) {
  c->SkipSpace();
  if (c->AtEnd()) return UnexpectedEnd();
  switch (c->Peek()) {
    case '<':
      return ParseUri(c);
    case '_':
      return ParseBlank(c);
    case '"':
      return ParseLiteral(c);
    default:
      return Status::ParseError(std::string("unexpected character '") +
                                c->Peek() + "'");
  }
}

}  // namespace

Result<Triple> ParseNTriplesLine(std::string_view line) {
  Cursor c{line, 0};
  RDFSPARK_ASSIGN_OR_RETURN(Term s, ParseTerm(&c));
  if (s.is_literal()) {
    return Status::ParseError("literal not allowed in subject position");
  }
  RDFSPARK_ASSIGN_OR_RETURN(Term p, ParseTerm(&c));
  if (!p.is_uri()) {
    return Status::ParseError("predicate must be a URI");
  }
  RDFSPARK_ASSIGN_OR_RETURN(Term o, ParseTerm(&c));
  c.SkipSpace();
  if (c.AtEnd() || c.Peek() != '.') {
    return Status::ParseError("missing terminating '.'");
  }
  ++c.pos;
  c.SkipSpace();
  if (!c.AtEnd()) return Status::ParseError("trailing characters after '.'");
  return Triple{std::move(s), std::move(p), std::move(o)};
}

Result<std::vector<Triple>> ParseNTriplesDocument(std::string_view text) {
  std::vector<Triple> out;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view raw = text.substr(start, end - start);
    ++line_no;
    std::string_view line = TrimWhitespace(raw);
    if (!line.empty() && line[0] != '#') {
      auto triple = ParseNTriplesLine(line);
      if (!triple.ok()) {
        return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                  triple.status().message());
      }
      out.push_back(std::move(triple).value());
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  return out;
}

std::string WriteNTriples(const std::vector<Triple>& triples) {
  std::string out;
  for (const Triple& t : triples) {
    out += t.ToNTriples();
    out.push_back('\n');
  }
  return out;
}

}  // namespace rdfspark::rdf
