#ifndef RDFSPARK_RDF_TERM_H_
#define RDFSPARK_RDF_TERM_H_

#include <compare>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace rdfspark::rdf {

/// Well-known vocabulary URIs.
inline constexpr char kRdfType[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr char kRdfsSubClassOf[] =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";
inline constexpr char kRdfsSubPropertyOf[] =
    "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
inline constexpr char kRdfsDomain[] =
    "http://www.w3.org/2000/01/rdf-schema#domain";
inline constexpr char kRdfsRange[] =
    "http://www.w3.org/2000/01/rdf-schema#range";
inline constexpr char kXsdInteger[] =
    "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr char kXsdDouble[] = "http://www.w3.org/2001/XMLSchema#double";

/// The three disjoint RDF resource sets: URIs (U), literals (L) and blank
/// nodes (B). A triple is (U ∪ B) × U × (U ∪ L ∪ B).
enum class TermKind : uint8_t { kUri = 0, kLiteral = 1, kBlank = 2 };

/// One RDF term. Immutable after construction via the factory functions.
class Term {
 public:
  Term() = default;

  static Term Uri(std::string uri);
  /// A literal with optional datatype URI and language tag (at most one of
  /// the two, per RDF 1.1; not enforced here).
  static Term Literal(std::string lexical, std::string datatype = "",
                      std::string lang = "");
  static Term Blank(std::string label);

  TermKind kind() const { return kind_; }
  bool is_uri() const { return kind_ == TermKind::kUri; }
  bool is_literal() const { return kind_ == TermKind::kLiteral; }
  bool is_blank() const { return kind_ == TermKind::kBlank; }

  /// URI text, literal lexical form, or blank node label.
  const std::string& lexical() const { return lexical_; }
  const std::string& datatype() const { return datatype_; }
  const std::string& lang() const { return lang_; }

  /// Serializes to N-Triples syntax: <uri>, "lit"^^<dt>, "lit"@lang, _:b0.
  /// This string doubles as the dictionary key, so it is canonical.
  std::string ToNTriples() const;

  /// If the literal parses as a number, returns it.
  Result<double> AsNumber() const;

  bool operator==(const Term&) const = default;
  auto operator<=>(const Term&) const = default;

 private:
  TermKind kind_ = TermKind::kUri;
  std::string lexical_;
  std::string datatype_;
  std::string lang_;
};

/// A triple of terms, pre-dictionary-encoding.
struct Triple {
  Term subject;
  Term predicate;
  Term object;

  bool operator==(const Triple&) const = default;
  auto operator<=>(const Triple&) const = default;

  std::string ToNTriples() const;
};

/// Dictionary-encoded term id. Ids are dense indexes assigned by Dictionary.
using TermId = uint64_t;

/// A dictionary-encoded triple — the record type the distributed engines
/// move around. Keeping it at 24 fixed bytes is the point of the encoding
/// step the paper credits HAQWA with ("minimizes data volume").
struct EncodedTriple {
  TermId s = 0;
  TermId p = 0;
  TermId o = 0;

  bool operator==(const EncodedTriple&) const = default;
  auto operator<=>(const EncodedTriple&) const = default;
};

/// ADL hooks so EncodedTriple can flow through RDDs (partitioning and
/// shuffle-byte accounting).
uint64_t HashValue(const EncodedTriple& t);
uint64_t EstimateSize(const EncodedTriple& t);

}  // namespace rdfspark::rdf

#endif  // RDFSPARK_RDF_TERM_H_
