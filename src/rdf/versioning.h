#ifndef RDFSPARK_RDF_VERSIONING_H_
#define RDFSPARK_RDF_VERSIONING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/store.h"

namespace rdfspark::rdf {

/// One change set: triples added and removed relative to the previous
/// version.
struct Delta {
  std::vector<Triple> added;
  std::vector<Triple> removed;
  std::string message;
};

/// An archive of an evolving RDF dataset, stored as a base version plus a
/// chain of deltas — the §V direction that "next generation parallel RDF
/// query answering systems should be able to handle evolving data in an
/// uninterrupted manner" (cf. the archiving policies of [25] and the SPBv
/// benchmark [22]).
///
/// Supported access patterns:
///   * Materialize(v): the full store at version v (independent copy);
///   * DeltaBetween(v1, v2): net changes between two versions;
///   * uninterrupted answering: Materialize(latest) while older versions
///     stay addressable.
class VersionedStore {
 public:
  VersionedStore();

  VersionedStore(const VersionedStore&) = delete;
  VersionedStore& operator=(const VersionedStore&) = delete;

  /// Applies a change set; returns the new version number (>= 1). Removing
  /// a triple absent from the current version is an error; adding a triple
  /// already present is ignored (RDF graphs are sets).
  Result<int> Commit(const Delta& delta);

  int latest_version() const { return static_cast<int>(deltas_.size()); }

  /// Number of triples alive at `version`.
  Result<uint64_t> SizeAt(int version) const;

  /// Full store at `version` (0 = empty base).
  Result<TripleStore> Materialize(int version) const;

  /// Net additions/removals turning version `from` into version `to`.
  Result<Delta> DeltaBetween(int from, int to) const;

  /// Total stored records across all deltas (the archive's storage cost,
  /// as opposed to the sum of materialized snapshot sizes).
  uint64_t StoredRecords() const;

 private:
  struct EncodedDelta {
    std::vector<EncodedTriple> added;
    std::vector<EncodedTriple> removed;
  };

  Status CheckVersion(int version) const;

  /// Shared dictionary across versions.
  Dictionary dict_;
  std::vector<EncodedDelta> deltas_;
  /// Current (latest) triple set, for validation and fast latest access.
  std::vector<EncodedTriple> current_;
};

}  // namespace rdfspark::rdf

#endif  // RDFSPARK_RDF_VERSIONING_H_
