#ifndef RDFSPARK_RDF_STORE_H_
#define RDFSPARK_RDF_STORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace rdfspark::rdf {

/// Dataset-level statistics, the raw material of the surveyed optimizers:
/// SPARQLGX "counts all distinct subjects, predicates and objects"; the
/// GraphFrames engine orders sub-queries by predicate frequency; S2RDF
/// compares table sizes.
struct DatasetStatistics {
  uint64_t num_triples = 0;
  uint64_t distinct_subjects = 0;
  uint64_t distinct_predicates = 0;
  uint64_t distinct_objects = 0;
  /// Triples per predicate (VP table sizes).
  std::unordered_map<TermId, uint64_t> predicate_count;
  /// Distinct subjects / objects per predicate, for selectivity estimation.
  std::unordered_map<TermId, uint64_t> predicate_distinct_subjects;
  std::unordered_map<TermId, uint64_t> predicate_distinct_objects;
  /// Largest number of triples any single subject (resp. object) carries
  /// under each predicate — *sound* caps for bound-subject/bound-object
  /// scans, feeding the Tier D resource envelopes (max out-degree and
  /// in-degree of the predicate's bipartite graph).
  std::unordered_map<TermId, uint64_t> predicate_max_subject_degree;
  std::unordered_map<TermId, uint64_t> predicate_max_object_degree;
};

/// A triple pattern over ids; std::nullopt is a wildcard.
struct IdPattern {
  std::optional<TermId> s;
  std::optional<TermId> p;
  std::optional<TermId> o;
};

/// In-memory dictionary-encoded triple store with S/P/O hash indexes. This
/// is the "HDFS dataset" every engine loads from, and the substrate of the
/// non-distributed reference evaluator used to cross-check engines.
class TripleStore {
 public:
  TripleStore() = default;

  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  /// Encodes and inserts. Duplicate triples are kept (RDF graphs are sets,
  /// but bulk loads dedupe explicitly via Dedupe()).
  EncodedTriple Add(const Triple& triple);
  void AddEncoded(const EncodedTriple& t);

  /// Bulk insert.
  void AddAll(const std::vector<Triple>& triples);

  /// Removes exact duplicates.
  void Dedupe();

  const std::vector<EncodedTriple>& triples() const { return triples_; }
  Dictionary& dictionary() { return dict_; }
  const Dictionary& dictionary() const { return dict_; }
  size_t size() const { return triples_.size(); }

  /// True if the exact triple is present.
  bool Contains(const EncodedTriple& t) const;

  /// All triples matching the pattern; uses the most selective index.
  std::vector<EncodedTriple> Match(const IdPattern& pattern) const;

  /// Id of rdf:type if it occurs in the data (engines special-case it).
  std::optional<TermId> TypePredicate() const;

  /// Recomputes statistics over the current contents.
  DatasetStatistics ComputeStatistics() const;

 private:
  Dictionary dict_;
  std::vector<EncodedTriple> triples_;
  std::unordered_map<TermId, std::vector<uint32_t>> s_index_;
  std::unordered_map<TermId, std::vector<uint32_t>> p_index_;
  std::unordered_map<TermId, std::vector<uint32_t>> o_index_;
};

}  // namespace rdfspark::rdf

#endif  // RDFSPARK_RDF_STORE_H_
