#ifndef RDFSPARK_RDF_NTRIPLES_H_
#define RDFSPARK_RDF_NTRIPLES_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"

namespace rdfspark::rdf {

/// Parses one N-Triples line ("<s> <p> <o> ." with literal/blank forms).
/// Comment lines (starting with '#') and blank lines are rejected here;
/// ParseNTriplesDocument skips them.
Result<Triple> ParseNTriplesLine(std::string_view line);

/// Parses a whole document, skipping blank lines and '#' comments. Fails on
/// the first malformed line with its 1-based line number in the message.
Result<std::vector<Triple>> ParseNTriplesDocument(std::string_view text);

/// Serializes triples, one per line.
std::string WriteNTriples(const std::vector<Triple>& triples);

}  // namespace rdfspark::rdf

#endif  // RDFSPARK_RDF_NTRIPLES_H_
