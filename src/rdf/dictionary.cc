#include "rdf/dictionary.h"

#include <cassert>

#include "spark/hb.h"

namespace rdfspark::rdf {

namespace hb = spark::hb;

int64_t Dictionary::HbId() const { return hb::StableId(&hb_id_); }

void Dictionary::Freeze() const {
  hb::RecordAccess(hb::DictionaryObject(HbId()), hb::Access::kAtomicWrite,
                   "Dictionary::Freeze");
  frozen_.store(true, std::memory_order_release);
  // Publication barrier: everything Encoded before the freeze becomes
  // visible to concurrent readers through this edge.
  hb::Publish(hb::DictionaryObject(HbId()));
}

TermId Dictionary::Encode(const Term& term) {
  assert(!frozen() &&
         "Dictionary::Encode on a frozen (serving) dictionary — query-time "
         "paths must use the const Lookup/Decode API");
  hb::RecordAccess(hb::DictionaryObject(HbId()), hb::Access::kWrite,
                   "Dictionary::Encode");
  std::string key = term.ToNTriples();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TermId id = terms_.size();
  string_bytes_ += key.size();
  index_.emplace(std::move(key), id);
  terms_.push_back(term);
  return id;
}

EncodedTriple Dictionary::Encode(const Triple& triple) {
  return EncodedTriple{Encode(triple.subject), Encode(triple.predicate),
                       Encode(triple.object)};
}

Result<TermId> Dictionary::Lookup(const Term& term) const {
  hb::Consume(hb::DictionaryObject(HbId()));
  hb::RecordAccess(hb::DictionaryObject(HbId()), hb::Access::kRead,
                   "Dictionary::Lookup");
  auto it = index_.find(term.ToNTriples());
  if (it == index_.end()) {
    return Status::NotFound("term not in dictionary: " + term.ToNTriples());
  }
  return it->second;
}

Result<Term> Dictionary::Decode(TermId id) const {
  hb::Consume(hb::DictionaryObject(HbId()));
  hb::RecordAccess(hb::DictionaryObject(HbId()), hb::Access::kRead,
                   "Dictionary::Decode");
  if (id >= terms_.size()) {
    return Status::OutOfRange("term id " + std::to_string(id) +
                              " out of range");
  }
  return terms_[id];
}

Result<std::string> Dictionary::DecodeString(TermId id) const {
  RDFSPARK_ASSIGN_OR_RETURN(Term t, Decode(id));
  return t.ToNTriples();
}

}  // namespace rdfspark::rdf
