#include "rdf/generator.h"

#include <algorithm>
#include <utility>

#include "common/rng.h"

namespace rdfspark::rdf {

namespace {

std::string Ub(const std::string& local) { return kUbPrefix + local; }
std::string Wd(const std::string& local) { return kWdPrefix + local; }

Term UbUri(const std::string& local) { return Term::Uri(Ub(local)); }
Term WdUri(const std::string& local) { return Term::Uri(Wd(local)); }

void Emit(std::vector<Triple>* out, Term s, const std::string& p, Term o) {
  out->push_back(Triple{std::move(s), Term::Uri(p), std::move(o)});
}

}  // namespace

std::vector<Triple> GenerateLubm(const LubmConfig& config) {
  std::vector<Triple> out;
  Rng rng(config.seed);
  const std::string type = kRdfType;

  std::vector<Term> universities;
  for (int u = 0; u < config.num_universities; ++u) {
    Term uni = Term::Uri(Ub("University" + std::to_string(u)));
    universities.push_back(uni);
    Emit(&out, uni, type, UbUri("University"));
    Emit(&out, uni, Ub("name"),
         Term::Literal("University " + std::to_string(u)));
  }

  for (int u = 0; u < config.num_universities; ++u) {
    const Term& uni = universities[static_cast<size_t>(u)];
    for (int d = 0; d < config.departments_per_university; ++d) {
      std::string dept_id =
          "Dept" + std::to_string(d) + ".Univ" + std::to_string(u);
      Term dept = Term::Uri(Ub(dept_id));
      Emit(&out, dept, type, UbUri("Department"));
      Emit(&out, dept, Ub("subOrganizationOf"), uni);
      Emit(&out, dept, Ub("name"), Term::Literal(dept_id));

      // Courses.
      std::vector<Term> courses;
      for (int c = 0; c < config.courses_per_department; ++c) {
        Term course =
            Term::Uri(Ub("Course" + std::to_string(c) + "." + dept_id));
        courses.push_back(course);
        Emit(&out, course, type,
             UbUri(c % 3 == 0 ? "GraduateCourse" : "Course"));
        Emit(&out, course, Ub("name"),
             Term::Literal("Course " + std::to_string(c)));
      }

      // Professors.
      static const char* kRanks[] = {"FullProfessor", "AssociateProfessor",
                                     "AssistantProfessor"};
      std::vector<Term> professors;
      for (int pi = 0; pi < config.professors_per_department; ++pi) {
        Term prof =
            Term::Uri(Ub("Professor" + std::to_string(pi) + "." + dept_id));
        professors.push_back(prof);
        Emit(&out, prof, type, UbUri(kRanks[pi % 3]));
        Emit(&out, prof, Ub("worksFor"), dept);
        Emit(&out, prof, Ub("name"),
             Term::Literal("Professor " + std::to_string(pi)));
        Emit(&out, prof, Ub("emailAddress"),
             Term::Literal("prof" + std::to_string(pi) + "@" + dept_id));
        Emit(&out, prof, Ub("doctoralDegreeFrom"),
             universities[rng.Below(universities.size())]);
        if (pi == 0) Emit(&out, prof, Ub("headOf"), dept);
        // Teaching load: 1-2 courses.
        if (!courses.empty()) {
          Emit(&out, prof, Ub("teacherOf"),
               courses[rng.Below(courses.size())]);
          if (rng.Bernoulli(0.5)) {
            Emit(&out, prof, Ub("teacherOf"),
                 courses[rng.Below(courses.size())]);
          }
        }
        // Publications.
        for (int b = 0; b < config.publications_per_professor; ++b) {
          Term pub = Term::Uri(Ub("Publication" + std::to_string(b) + "." +
                                  std::to_string(pi) + "." + dept_id));
          Emit(&out, pub, type, UbUri("Publication"));
          Emit(&out, pub, Ub("publicationAuthor"), prof);
          Emit(&out, pub, Ub("name"),
               Term::Literal("Pub " + std::to_string(b)));
        }
      }

      // Students.
      for (int s = 0; s < config.students_per_department; ++s) {
        bool grad = s % 4 == 0;
        Term student =
            Term::Uri(Ub("Student" + std::to_string(s) + "." + dept_id));
        Emit(&out, student, type,
             UbUri(grad ? "GraduateStudent" : "UndergraduateStudent"));
        Emit(&out, student, Ub("memberOf"), dept);
        Emit(&out, student, Ub("name"),
             Term::Literal("Student " + std::to_string(s)));
        Emit(&out, student, Ub("age"),
             Term::Literal(std::to_string(18 + rng.Below(12)), kXsdInteger));
        if (grad && !professors.empty()) {
          Emit(&out, student, Ub("advisor"),
               professors[rng.Below(professors.size())]);
          Emit(&out, student, Ub("undergraduateDegreeFrom"),
               universities[rng.Below(universities.size())]);
        }
        int num_courses = 1 + static_cast<int>(rng.Below(3));
        for (int c = 0; c < num_courses && !courses.empty(); ++c) {
          Emit(&out, student, Ub("takesCourse"),
               courses[rng.Below(courses.size())]);
        }
      }
    }
  }
  return out;
}

std::vector<Triple> LubmSchema() {
  std::vector<Triple> out;
  auto sub_class = [&](const char* a, const char* b) {
    out.push_back(Triple{UbUri(a), Term::Uri(kRdfsSubClassOf), UbUri(b)});
  };
  auto sub_prop = [&](const char* a, const char* b) {
    out.push_back(Triple{UbUri(a), Term::Uri(kRdfsSubPropertyOf), UbUri(b)});
  };
  auto dom = [&](const char* p, const char* c) {
    out.push_back(Triple{UbUri(p), Term::Uri(kRdfsDomain), UbUri(c)});
  };
  auto range = [&](const char* p, const char* c) {
    out.push_back(Triple{UbUri(p), Term::Uri(kRdfsRange), UbUri(c)});
  };
  sub_class("FullProfessor", "Professor");
  sub_class("AssociateProfessor", "Professor");
  sub_class("AssistantProfessor", "Professor");
  sub_class("Professor", "Faculty");
  sub_class("Lecturer", "Faculty");
  sub_class("Faculty", "Person");
  sub_class("GraduateStudent", "Student");
  sub_class("UndergraduateStudent", "Student");
  sub_class("Student", "Person");
  sub_class("GraduateCourse", "Course");
  sub_prop("headOf", "worksFor");
  sub_prop("doctoralDegreeFrom", "degreeFrom");
  sub_prop("undergraduateDegreeFrom", "degreeFrom");
  dom("worksFor", "Faculty");
  range("worksFor", "Department");
  dom("takesCourse", "Student");
  range("takesCourse", "Course");
  dom("advisor", "Student");
  range("advisor", "Professor");
  range("subOrganizationOf", "University");
  return out;
}

std::vector<Triple> GenerateWatdiv(const WatdivConfig& config) {
  std::vector<Triple> out;
  Rng rng(config.seed);
  const std::string type = kRdfType;

  std::vector<Term> products;
  for (int p = 0; p < config.num_products; ++p) {
    Term prod = Term::Uri(Wd("Product" + std::to_string(p)));
    products.push_back(prod);
    Emit(&out, prod, type, WdUri("Product"));
    Emit(&out, prod, Wd("hasGenre"),
         WdUri("Genre" + std::to_string(p % 7)));
    Emit(&out, prod, Wd("price"),
         Term::Literal(std::to_string(5 + rng.Below(995)), kXsdInteger));
  }
  for (int r = 0; r < config.num_retailers; ++r) {
    Term retailer = Term::Uri(Wd("Retailer" + std::to_string(r)));
    Emit(&out, retailer, type, WdUri("Retailer"));
    int offers = config.num_products / config.num_retailers;
    for (int i = 0; i < offers; ++i) {
      Emit(&out, retailer, Wd("offers"),
           products[rng.Zipf(products.size(), config.zipf_exponent)]);
    }
  }
  std::vector<Term> users;
  for (int u = 0; u < config.num_users; ++u) {
    Term user = Term::Uri(Wd("User" + std::to_string(u)));
    users.push_back(user);
    Emit(&out, user, type, WdUri("User"));
    Emit(&out, user, Wd("name"), Term::Literal("User " + std::to_string(u)));
  }
  int review_counter = 0;
  for (int u = 0; u < config.num_users; ++u) {
    const Term& user = users[static_cast<size_t>(u)];
    int follows = static_cast<int>(config.follows_per_user);
    for (int f = 0; f < follows; ++f) {
      // Zipf: early users are celebrities.
      Term other = users[rng.Zipf(users.size(), config.zipf_exponent)];
      if (!(other == user)) Emit(&out, user, Wd("follows"), other);
    }
    int likes = static_cast<int>(config.likes_per_user);
    for (int l = 0; l < likes; ++l) {
      Emit(&out, user, Wd("likes"),
           products[rng.Zipf(products.size(), config.zipf_exponent)]);
    }
    int reviews =
        static_cast<int>(config.reviews_per_user) + (rng.Bernoulli(0.5) ? 1 : 0);
    for (int rv = 0; rv < reviews; ++rv) {
      Term review = Term::Uri(Wd("Review" + std::to_string(review_counter++)));
      Emit(&out, review, type, WdUri("Review"));
      Emit(&out, review, Wd("reviewer"), user);
      Emit(&out, review, Wd("reviewFor"),
           products[rng.Zipf(products.size(), config.zipf_exponent)]);
      Emit(&out, review, Wd("rating"),
           Term::Literal(std::to_string(1 + rng.Below(5)), kXsdInteger));
    }
  }
  return out;
}

const char* QueryShapeName(QueryShape shape) {
  switch (shape) {
    case QueryShape::kStar:
      return "star";
    case QueryShape::kLinear:
      return "linear";
    case QueryShape::kSnowflake:
      return "snowflake";
    case QueryShape::kComplex:
      return "complex";
  }
  return "unknown";
}

std::string LubmShapeQuery(QueryShape shape, int size) {
  const std::string prologue =
      "PREFIX ub: <" + std::string(kUbPrefix) +
      ">\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";
  switch (shape) {
    case QueryShape::kStar: {
      // Subject-subject joins on ?x, width `size` (2..5).
      int width = std::max(2, std::min(size, 5));
      std::string q = prologue + "SELECT ?x ?d WHERE {\n";
      static const char* kPreds[] = {"worksFor", "name", "emailAddress",
                                     "doctoralDegreeFrom", "teacherOf"};
      static const char* kVars[] = {"?d", "?n", "?e", "?u", "?c"};
      for (int i = 0; i < width; ++i) {
        q += std::string("  ?x ub:") + kPreds[i] + " " + kVars[i] + " .\n";
      }
      q += "}\n";
      return q;
    }
    case QueryShape::kLinear: {
      // Object-subject chain of length `size` (2..4).
      int len = std::max(2, std::min(size, 4));
      static const char* kChain[] = {"advisor", "worksFor",
                                     "subOrganizationOf", "name"};
      std::string q = prologue + "SELECT ?v0 ?v" + std::to_string(len) +
                      " WHERE {\n";
      for (int i = 0; i < len; ++i) {
        q += "  ?v" + std::to_string(i) + " ub:" + kChain[i] + " ?v" +
             std::to_string(i + 1) + " .\n";
      }
      q += "}\n";
      return q;
    }
    case QueryShape::kSnowflake: {
      // Two stars (student ?x, professor ?p) joined through advisor.
      return prologue +
             "SELECT ?x ?p ?d WHERE {\n"
             "  ?x rdf:type ub:GraduateStudent .\n"
             "  ?x ub:memberOf ?dm .\n"
             "  ?x ub:advisor ?p .\n"
             "  ?p ub:worksFor ?d .\n"
             "  ?p ub:name ?pn .\n"
             "  ?d ub:subOrganizationOf ?u .\n"
             "}\n";
    }
    case QueryShape::kComplex: {
      return prologue +
             "SELECT DISTINCT ?x ?n ?age WHERE {\n"
             "  ?x rdf:type ub:UndergraduateStudent .\n"
             "  ?x ub:name ?n .\n"
             "  ?x ub:age ?age .\n"
             "  ?x ub:takesCourse ?c .\n"
             "  ?t ub:teacherOf ?c .\n"
             "  ?t ub:worksFor ?d .\n"
             "  FILTER (?age > 20)\n"
             "}\n";
    }
  }
  return prologue;
}

std::string WatdivShapeQuery(QueryShape shape) {
  const std::string prologue =
      "PREFIX wd: <" + std::string(kWdPrefix) +
      ">\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";
  switch (shape) {
    case QueryShape::kStar:
      return prologue +
             "SELECT ?u ?n WHERE {\n"
             "  ?u rdf:type wd:User .\n"
             "  ?u wd:name ?n .\n"
             "  ?u wd:follows ?v .\n"
             "  ?u wd:likes ?p .\n"
             "}\n";
    case QueryShape::kLinear:
      return prologue +
             "SELECT ?r ?v WHERE {\n"
             "  ?r wd:reviewer ?u .\n"
             "  ?u wd:follows ?v .\n"
             "}\n";
    case QueryShape::kSnowflake:
      return prologue +
             "SELECT ?r ?u ?g WHERE {\n"
             "  ?r wd:reviewFor ?p .\n"
             "  ?r wd:reviewer ?u .\n"
             "  ?u wd:name ?n .\n"
             "  ?p wd:hasGenre ?g .\n"
             "}\n";
    case QueryShape::kComplex:
      return prologue +
             "SELECT DISTINCT ?u ?rating WHERE {\n"
             "  ?r wd:reviewer ?u .\n"
             "  ?r wd:rating ?rating .\n"
             "  ?r wd:reviewFor ?p .\n"
             "  ?q wd:reviewFor ?p .\n"
             "  FILTER (?rating >= 4)\n"
             "}\n";
  }
  return prologue;
}

std::vector<std::pair<std::string, std::string>> LubmBenchmarkQueries() {
  const std::string p =
      "PREFIX ub: <" + std::string(kUbPrefix) +
      ">\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";
  std::vector<std::pair<std::string, std::string>> out;
  // Q1: graduate students taking a specific course.
  out.emplace_back("Q1", p +
                             "SELECT ?x WHERE {\n"
                             "  ?x rdf:type ub:GraduateStudent .\n"
                             "  ?x ub:takesCourse ub:Course0.Dept0.Univ0 .\n"
                             "}\n");
  // Q2: graduate students, their university and department (triangle).
  out.emplace_back("Q2",
                   p +
                       "SELECT ?x ?y ?z WHERE {\n"
                       "  ?x rdf:type ub:GraduateStudent .\n"
                       "  ?y rdf:type ub:University .\n"
                       "  ?z rdf:type ub:Department .\n"
                       "  ?x ub:memberOf ?z .\n"
                       "  ?z ub:subOrganizationOf ?y .\n"
                       "  ?x ub:undergraduateDegreeFrom ?y .\n"
                       "}\n");
  // Q3: publications of a particular professor.
  out.emplace_back("Q3",
                   p +
                       "SELECT ?x WHERE {\n"
                       "  ?x rdf:type ub:Publication .\n"
                       "  ?x ub:publicationAuthor "
                       "ub:Professor0.Dept0.Univ0 .\n"
                       "}\n");
  // Q4: professors of a department with name and email (needs Professor
  // subsumption).
  out.emplace_back("Q4",
                   p +
                       "SELECT ?x ?n ?e WHERE {\n"
                       "  ?x rdf:type ub:Professor .\n"
                       "  ?x ub:worksFor ub:Dept0.Univ0 .\n"
                       "  ?x ub:name ?n .\n"
                       "  ?x ub:emailAddress ?e .\n"
                       "}\n");
  // Q5: members of a department (needs Person subsumption via memberOf
  // domain... our adaptation: any member).
  out.emplace_back("Q5", p +
                             "SELECT ?x WHERE {\n"
                             "  ?x ub:memberOf ub:Dept0.Univ0 .\n"
                             "}\n");
  // Q6: all students (pure subsumption query).
  out.emplace_back("Q6", p +
                             "SELECT ?x WHERE {\n"
                             "  ?x rdf:type ub:Student .\n"
                             "}\n");
  // Q7: students taking a course taught by a specific professor.
  out.emplace_back("Q7",
                   p +
                       "SELECT ?x ?y WHERE {\n"
                       "  ?x rdf:type ub:Student .\n"
                       "  ?y rdf:type ub:Course .\n"
                       "  ?x ub:takesCourse ?y .\n"
                       "  ub:Professor0.Dept0.Univ0 ub:teacherOf ?y .\n"
                       "}\n");
  // Q8: students of departments of a university, with email.
  out.emplace_back("Q8",
                   p +
                       "SELECT ?x ?y WHERE {\n"
                       "  ?x rdf:type ub:Student .\n"
                       "  ?y rdf:type ub:Department .\n"
                       "  ?x ub:memberOf ?y .\n"
                       "  ?y ub:subOrganizationOf ub:University0 .\n"
                       "}\n");
  // Q9: student - advisor - course triangle.
  out.emplace_back("Q9",
                   p +
                       "SELECT ?x ?y ?z WHERE {\n"
                       "  ?x rdf:type ub:Student .\n"
                       "  ?y rdf:type ub:Faculty .\n"
                       "  ?z rdf:type ub:Course .\n"
                       "  ?x ub:advisor ?y .\n"
                       "  ?y ub:teacherOf ?z .\n"
                       "  ?x ub:takesCourse ?z .\n"
                       "}\n");
  // Q10: students taking a specific graduate course.
  out.emplace_back("Q10",
                   p +
                       "SELECT ?x WHERE {\n"
                       "  ?x rdf:type ub:Student .\n"
                       "  ?x ub:takesCourse ub:Course0.Dept0.Univ0 .\n"
                       "}\n");
  // Q11: research groups of a university — our generator has none, so the
  // adapted query asks for sub-organizations (non-empty by construction).
  out.emplace_back("Q11",
                   p +
                       "SELECT ?x WHERE {\n"
                       "  ?x ub:subOrganizationOf ub:University0 .\n"
                       "}\n");
  // Q12: department chairs of a university (headOf is a sub-property of
  // worksFor, so inference also yields worksFor edges).
  out.emplace_back("Q12",
                   p +
                       "SELECT ?x ?y WHERE {\n"
                       "  ?x ub:headOf ?y .\n"
                       "  ?y rdf:type ub:Department .\n"
                       "  ?y ub:subOrganizationOf ub:University0 .\n"
                       "}\n");
  // Q13: people with a degree from a specific university (degreeFrom is
  // purely inferred from doctoral/undergraduate sub-properties).
  out.emplace_back("Q13", p +
                              "SELECT ?x WHERE {\n"
                              "  ?x ub:degreeFrom ub:University0 .\n"
                              "}\n");
  // Q14: all undergraduate students (the paper's classic full-scan query).
  out.emplace_back("Q14",
                   p +
                       "SELECT ?x WHERE {\n"
                       "  ?x rdf:type ub:UndergraduateStudent .\n"
                       "}\n");
  return out;
}

std::vector<std::pair<QueryShape, std::string>> LubmQueryMix() {
  return {
      {QueryShape::kStar, LubmShapeQuery(QueryShape::kStar, 4)},
      {QueryShape::kLinear, LubmShapeQuery(QueryShape::kLinear, 3)},
      {QueryShape::kSnowflake, LubmShapeQuery(QueryShape::kSnowflake)},
      {QueryShape::kComplex, LubmShapeQuery(QueryShape::kComplex)},
  };
}

}  // namespace rdfspark::rdf
