#ifndef RDFSPARK_RDF_RDFS_H_
#define RDFSPARK_RDF_RDFS_H_

#include <cstdint>

#include "rdf/store.h"

namespace rdfspark::rdf {

/// Which RDFS entailment rules to apply.
struct RdfsOptions {
  bool sub_class_of = true;       // rdfs9 + rdfs11 (transitivity)
  bool sub_property_of = true;    // rdfs7 + rdfs5 (transitivity)
  bool domain = true;             // rdfs2
  bool range = true;              // rdfs3
  /// Safety bound on fixpoint iterations.
  int max_iterations = 64;
};

/// Result of materialization.
struct RdfsResult {
  uint64_t inferred_triples = 0;
  int iterations = 0;
};

/// Forward-chains the selected RDFS rules over `store` until fixpoint,
/// inserting the inferred triples. RDF Schema "includes a set of inference
/// rules used to generate new, implicit triples from explicit ones" (§II.A);
/// the engines can query either the raw or the materialized graph.
RdfsResult MaterializeRdfs(TripleStore* store,
                           const RdfsOptions& options = RdfsOptions());

}  // namespace rdfspark::rdf

#endif  // RDFSPARK_RDF_RDFS_H_
