#ifndef RDFSPARK_COMMON_RNG_H_
#define RDFSPARK_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rdfspark {

/// Deterministic xoshiro256**-based random number generator. The data
/// generators and the cluster simulator depend on run-to-run determinism so
/// that benchmark output is reproducible; std::mt19937_64 would also work but
/// its seeding is verbose and its state large.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-distributed rank in [0, n) with exponent s; rank 0 is the most
  /// frequent. Uses inverse-CDF over precomputed weights for small n and
  /// rejection sampling otherwise; here n is small enough for the direct way.
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = Below(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace rdfspark

#endif  // RDFSPARK_COMMON_RNG_H_
