#include "common/json.h"

#include <cctype>
#include <cstdio>

namespace rdfspark {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

/// Recursive-descent cursor over the JSON grammar. Positions are byte
/// offsets into the original text for error reporting.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(std::string* error) {
    SkipWs();
    if (!ParseValue(0)) {
      if (error != nullptr) {
        *error = error_ + " at offset " + std::to_string(pos_);
      }
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing characters at offset " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const char* msg) {
    if (error_.empty()) error_ = msg;
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Peek(char* c) const {
    if (pos_ >= text_.size()) return false;
    *c = text_[pos_];
    return true;
  }

  bool ParseValue(int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    char c;
    if (!Peek(&c)) return Fail("unexpected end of input");
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        return ParseString();
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return Fail("bad literal");
    pos_ += lit.size();
    return true;
  }

  bool ParseObject(int depth) {
    ++pos_;  // '{'
    SkipWs();
    char c;
    if (Peek(&c) && c == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Peek(&c) || c != '"') return Fail("expected object key");
      if (!ParseString()) return false;
      SkipWs();
      if (!Peek(&c) || c != ':') return Fail("expected ':'");
      ++pos_;
      SkipWs();
      if (!ParseValue(depth + 1)) return false;
      SkipWs();
      if (!Peek(&c)) return Fail("unterminated object");
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(int depth) {
    ++pos_;  // '['
    SkipWs();
    char c;
    if (Peek(&c) && c == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!ParseValue(depth + 1)) return false;
      SkipWs();
      if (!Peek(&c)) return Fail("unterminated array");
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString() {
    ++pos_;  // opening '"'
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        char e;
        if (!Peek(&e)) return Fail("unterminated escape");
        switch (e) {
          case '"':
          case '\\':
          case '/':
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't':
            ++pos_;
            break;
          case 'u': {
            ++pos_;
            for (int i = 0; i < 4; ++i) {
              char h;
              if (!Peek(&h) || std::isxdigit(static_cast<unsigned char>(h)) == 0) {
                return Fail("bad \\u escape");
              }
              ++pos_;
            }
            break;
          }
          default:
            return Fail("bad escape character");
        }
      } else {
        ++pos_;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber() {
    size_t start = pos_;
    char c;
    if (Peek(&c) && c == '-') ++pos_;
    if (!Peek(&c) || std::isdigit(static_cast<unsigned char>(c)) == 0) {
      return Fail("expected value");
    }
    if (c == '0') {
      ++pos_;
    } else {
      while (Peek(&c) && std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      }
    }
    if (Peek(&c) && c == '.') {
      ++pos_;
      if (!Peek(&c) || std::isdigit(static_cast<unsigned char>(c)) == 0) {
        return Fail("digit expected after '.'");
      }
      while (Peek(&c) && std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      }
    }
    if (Peek(&c) && (c == 'e' || c == 'E')) {
      ++pos_;
      if (Peek(&c) && (c == '+' || c == '-')) ++pos_;
      if (!Peek(&c) || std::isdigit(static_cast<unsigned char>(c)) == 0) {
        return Fail("digit expected in exponent");
      }
      while (Peek(&c) && std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool ValidateJson(std::string_view text, std::string* error) {
  return JsonParser(text).Parse(error);
}

}  // namespace rdfspark
