#include "common/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace rdfspark {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string_view fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kString ? v->str
                                                  : std::string(fallback);
}

namespace {

void AppendUtf8(std::string* out, uint32_t cp) {
  if (cp < 0x80) {
    *out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    *out += static_cast<char>(0xC0 | (cp >> 6));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    *out += static_cast<char>(0xE0 | (cp >> 12));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    *out += static_cast<char>(0xF0 | (cp >> 18));
    *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

/// Recursive-descent cursor over the JSON grammar. Positions are byte
/// offsets into the original text for error reporting. One implementation
/// backs both surfaces: with a null `out` the cursor only validates; with
/// a JsonValue it also builds the tree (decoding string escapes).
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipWs();
    if (!ParseValue(0, out)) {
      if (error != nullptr) {
        *error = error_ + " at offset " + std::to_string(pos_);
      }
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing characters at offset " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const char* msg) {
    if (error_.empty()) error_ = msg;
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Peek(char* c) const {
    if (pos_ >= text_.size()) return false;
    *c = text_[pos_];
    return true;
  }

  bool ParseValue(int depth, JsonValue* out) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    char c;
    if (!Peek(&c)) return Fail("unexpected end of input");
    switch (c) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"':
        if (out != nullptr) out->kind = JsonValue::Kind::kString;
        return ParseString(out != nullptr ? &out->str : nullptr);
      case 't':
        if (out != nullptr) {
          out->kind = JsonValue::Kind::kBool;
          out->boolean = true;
        }
        return ParseLiteral("true");
      case 'f':
        if (out != nullptr) {
          out->kind = JsonValue::Kind::kBool;
          out->boolean = false;
        }
        return ParseLiteral("false");
      case 'n':
        if (out != nullptr) out->kind = JsonValue::Kind::kNull;
        return ParseLiteral("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return Fail("bad literal");
    pos_ += lit.size();
    return true;
  }

  bool ParseObject(int depth, JsonValue* out) {
    ++pos_;  // '{'
    if (out != nullptr) out->kind = JsonValue::Kind::kObject;
    SkipWs();
    char c;
    if (Peek(&c) && c == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Peek(&c) || c != '"') return Fail("expected object key");
      std::string key;
      if (!ParseString(out != nullptr ? &key : nullptr)) return false;
      SkipWs();
      if (!Peek(&c) || c != ':') return Fail("expected ':'");
      ++pos_;
      SkipWs();
      JsonValue* slot = nullptr;
      if (out != nullptr) {
        out->members.emplace_back(std::move(key), JsonValue{});
        slot = &out->members.back().second;
      }
      if (!ParseValue(depth + 1, slot)) return false;
      SkipWs();
      if (!Peek(&c)) return Fail("unterminated object");
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(int depth, JsonValue* out) {
    ++pos_;  // '['
    if (out != nullptr) out->kind = JsonValue::Kind::kArray;
    SkipWs();
    char c;
    if (Peek(&c) && c == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue* slot = nullptr;
      if (out != nullptr) {
        out->items.emplace_back();
        slot = &out->items.back();
      }
      if (!ParseValue(depth + 1, slot)) return false;
      SkipWs();
      if (!Peek(&c)) return Fail("unterminated array");
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseHex4(uint32_t* value) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char h;
      if (!Peek(&h) || std::isxdigit(static_cast<unsigned char>(h)) == 0) {
        return Fail("bad \\u escape");
      }
      uint32_t digit;
      if (h >= '0' && h <= '9') {
        digit = static_cast<uint32_t>(h - '0');
      } else {
        digit = static_cast<uint32_t>((h | 0x20) - 'a') + 10;
      }
      v = (v << 4) | digit;
      ++pos_;
    }
    *value = v;
    return true;
  }

  bool ParseString(std::string* decoded) {
    ++pos_;  // opening '"'
    while (pos_ < text_.size()) {
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        char e;
        if (!Peek(&e)) return Fail("unterminated escape");
        switch (e) {
          case '"':
          case '\\':
          case '/':
            ++pos_;
            if (decoded != nullptr) *decoded += e;
            break;
          case 'b':
          case 'f':
          case 'n':
          case 'r':
          case 't': {
            ++pos_;
            if (decoded != nullptr) {
              const char* plain = "\b\f\n\r\t";
              const char* names = "bfnrt";
              for (int i = 0; i < 5; ++i) {
                if (names[i] == e) *decoded += plain[i];
              }
            }
            break;
          }
          case 'u': {
            ++pos_;
            uint32_t cp;
            if (!ParseHex4(&cp)) return false;
            if (decoded != nullptr) {
              if (cp >= 0xD800 && cp <= 0xDBFF &&
                  text_.substr(pos_, 2) == "\\u") {
                // Try to combine a surrogate pair; on a malformed low
                // half, fall back to U+FFFD for the lone high surrogate.
                size_t save = pos_;
                pos_ += 2;
                uint32_t lo = 0;
                if (ParseHex4(&lo) && lo >= 0xDC00 && lo <= 0xDFFF) {
                  cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                } else {
                  error_.clear();
                  pos_ = save;
                  cp = 0xFFFD;
                }
              } else if (cp >= 0xD800 && cp <= 0xDFFF) {
                cp = 0xFFFD;  // Lone surrogate.
              }
              AppendUtf8(decoded, cp);
            }
            break;
          }
          default:
            return Fail("bad escape character");
        }
      } else {
        ++pos_;
        if (decoded != nullptr) *decoded += static_cast<char>(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    char c;
    if (Peek(&c) && c == '-') ++pos_;
    if (!Peek(&c) || std::isdigit(static_cast<unsigned char>(c)) == 0) {
      return Fail("expected value");
    }
    if (c == '0') {
      ++pos_;
    } else {
      while (Peek(&c) && std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      }
    }
    if (Peek(&c) && c == '.') {
      ++pos_;
      if (!Peek(&c) || std::isdigit(static_cast<unsigned char>(c)) == 0) {
        return Fail("digit expected after '.'");
      }
      while (Peek(&c) && std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      }
    }
    if (Peek(&c) && (c == 'e' || c == 'E')) {
      ++pos_;
      if (Peek(&c) && (c == '+' || c == '-')) ++pos_;
      if (!Peek(&c) || std::isdigit(static_cast<unsigned char>(c)) == 0) {
        return Fail("digit expected in exponent");
      }
      while (Peek(&c) && std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      }
    }
    if (out != nullptr) {
      out->kind = JsonValue::Kind::kNumber;
      std::string slice(text_.substr(start, pos_ - start));
      out->number = std::strtod(slice.c_str(), nullptr);
    }
    return pos_ > start;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool ValidateJson(std::string_view text, std::string* error) {
  return JsonParser(text).Parse(nullptr, error);
}

Result<JsonValue> ParseJson(std::string_view text) {
  JsonValue root;
  std::string error;
  if (!JsonParser(text).Parse(&root, &error)) {
    return Status::InvalidArgument("JSON parse failed: " + error);
  }
  return root;
}

}  // namespace rdfspark
