#ifndef RDFSPARK_COMMON_STATUS_H_
#define RDFSPARK_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace rdfspark {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention: public APIs never throw; they return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnsupported,
  kInternal,
  kIoError,
};

/// Returns a human-readable name for a status code ("OK", "ParseError", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy on the OK path (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status; aborts if given an OK status, because an OK
  /// Result must carry a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Accessors; valid only when ok().
  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// Moves the value out, or returns `alternative` on error.
  T ValueOr(T alternative) && {
    return ok() ? std::move(*value_) : std::move(alternative);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define RDFSPARK_RETURN_NOT_OK(expr)          \
  do {                                        \
    ::rdfspark::Status _st = (expr);          \
    if (!_st.ok()) return _st;                \
  } while (false)

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// binds the value to `lhs`.
#define RDFSPARK_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value();

#define RDFSPARK_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define RDFSPARK_ASSIGN_OR_RETURN_NAME(a, b) \
  RDFSPARK_ASSIGN_OR_RETURN_CONCAT(a, b)

#define RDFSPARK_ASSIGN_OR_RETURN(lhs, expr)                                  \
  RDFSPARK_ASSIGN_OR_RETURN_IMPL(                                             \
      RDFSPARK_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, expr)

}  // namespace rdfspark

#endif  // RDFSPARK_COMMON_STATUS_H_
