#ifndef RDFSPARK_COMMON_JSON_H_
#define RDFSPARK_COMMON_JSON_H_

#include <string>
#include <string_view>

namespace rdfspark {

/// Escapes `s` for inclusion inside a JSON string literal (no surrounding
/// quotes added): backslash, double quote and control characters.
std::string JsonEscape(std::string_view s);

/// Minimal strict JSON well-formedness check (RFC 8259 grammar: objects,
/// arrays, strings, numbers, true/false/null; rejects trailing garbage).
/// The observability artifacts (Chrome traces, BENCH_*.json, query_profile
/// output) are validated with this both in tests and — via python3 — in CI;
/// keeping a native validator lets the tests parse exports back without a
/// JSON library dependency. On failure `error` (if non-null) receives a
/// short message with the byte offset.
bool ValidateJson(std::string_view text, std::string* error = nullptr);

}  // namespace rdfspark

#endif  // RDFSPARK_COMMON_JSON_H_
