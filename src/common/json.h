#ifndef RDFSPARK_COMMON_JSON_H_
#define RDFSPARK_COMMON_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rdfspark {

/// Escapes `s` for inclusion inside a JSON string literal (no surrounding
/// quotes added): backslash, double quote and control characters.
std::string JsonEscape(std::string_view s);

/// Minimal strict JSON well-formedness check (RFC 8259 grammar: objects,
/// arrays, strings, numbers, true/false/null; rejects trailing garbage).
/// The observability artifacts (Chrome traces, BENCH_*.json, telemetry
/// exports, query_profile output) are validated with this both in tests
/// and — via python3 — in CI; keeping a native validator lets the tests
/// parse exports back without a JSON library dependency. On failure
/// `error` (if non-null) receives a short message with the byte offset.
bool ValidateJson(std::string_view text, std::string* error = nullptr);

/// One node of a parsed JSON document. Numbers are held as double (enough
/// for every artifact this repo writes: counters and millisecond floats);
/// object members keep source order and may repeat (RFC 8259 does not
/// forbid duplicate keys — Find returns the first).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;                                         // kString
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  /// First member named `key`, or null (null for non-objects too).
  const JsonValue* Find(std::string_view key) const;

  /// Convenience lookups over object members with typed fallbacks.
  double NumberOr(std::string_view key, double fallback) const;
  std::string StringOr(std::string_view key, std::string_view fallback) const;
};

/// Strict RFC 8259 parse of `text` into a JsonValue tree — the same
/// grammar ValidateJson checks (one shared implementation), so anything
/// the validator accepts parses and vice versa. String escapes are decoded
/// (\uXXXX to UTF-8, surrogate pairs combined; lone surrogates become
/// U+FFFD). The stats-store loader and tools/serve_monitor consume
/// telemetry artifacts through this.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace rdfspark

#endif  // RDFSPARK_COMMON_JSON_H_
