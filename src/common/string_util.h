#ifndef RDFSPARK_COMMON_STRING_UTIL_H_
#define RDFSPARK_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rdfspark {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

/// True if `s` begins with / ends with the given affix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lowercases ASCII characters only.
std::string AsciiToLower(std::string_view s);

/// Formats a byte count with binary units, e.g. "1.5 MiB".
std::string FormatBytes(uint64_t bytes);

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

}  // namespace rdfspark

#endif  // RDFSPARK_COMMON_STRING_UTIL_H_
