#ifndef RDFSPARK_COMMON_HASH_H_
#define RDFSPARK_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace rdfspark {

/// 64-bit FNV-1a over arbitrary bytes. Deterministic across platforms, which
/// keeps partition assignment (and therefore every shuffle metric) stable
/// between runs.
inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 14695981039346656037ULL;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Mixes a 64-bit integer (splitmix64 finalizer). Used to hash numeric keys
/// so that consecutive ids spread across partitions.
inline uint64_t MixHash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two hashes (boost-style).
inline uint64_t CombineHash64(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace rdfspark

#endif  // RDFSPARK_COMMON_HASH_H_
