#include "common/rng.h"

#include <cmath>

namespace rdfspark {

uint64_t Rng::Zipf(uint64_t n, double s) {
  if (n <= 1) return 0;
  // Inverse-CDF by binary search over the harmonic partial sums. The sums are
  // recomputed per call only for modest n; generators cache ranks themselves
  // when n is large.
  double total = 0.0;
  for (uint64_t k = 1; k <= n; ++k) total += 1.0 / std::pow(double(k), s);
  double u = NextDouble() * total;
  double acc = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(double(k), s);
    if (u <= acc) return k - 1;
  }
  return n - 1;
}

}  // namespace rdfspark
