#include "serving/query_server.h"

#include <cstdlib>
#include <utility>

#include "obs/prometheus.h"
#include "spark/hb.h"
#include "spark/tracing.h"
#include "sparql/parser.h"
#include "sparql/serialize.h"
#include "systems/plan/analyze.h"
#include "systems/plan/diagnostics.h"
#include "systems/plan/resource.h"

namespace rdfspark::serving {

namespace {

bool EnvFlag(const char* name) {
  // Read at Options construction, on the owner's thread before any worker
  // starts; the process never calls setenv, so the read cannot race.
  const char* env = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  return env != nullptr && env[0] != '\0';
}

uint64_t EnvBytes(const char* name) {
  const char* env = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr || env[0] == '\0') return 0;
  return std::strtoull(env, nullptr, 10);
}

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

QueryServer::Options::Options()
    : memory_budget_bytes(EnvBytes("RDFSPARK_MEMORY_BUDGET")),
      verify_queries(EnvFlag("RDFSPARK_VERIFY_QUERIES")),
      verify_plans(EnvFlag("RDFSPARK_VERIFY_PLANS")),
      check_races(EnvFlag("RDFSPARK_CHECK_RACES")) {}

const RequestResult& QueryServer::Ticket::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return result_;
}

QueryServer::QueryServer(spark::SparkContext* sc, Options options)
    : sc_(sc),
      options_(options),
      cache_(options.plan_cache_capacity, options.plan_cache_byte_budget) {
  if (options_.worker_threads < 1) options_.worker_threads = 1;
  if (options_.telemetry) {
    // The logical cache model must mirror the physical cache's capacity,
    // or the replayed hit/miss stream would diverge from reality.
    obs::TelemetryOptions topts = options_.telemetry_options;
    topts.logical_cache_capacity = options_.plan_cache_capacity;
    telemetry_ = std::make_unique<obs::TelemetrySink>(topts);
  }
  if (options_.check_races) {
    // The server owns one Tier C window spanning its lifetime. Opened
    // before any engine is constructed so dataset loading, cache fills and
    // every request all land in the same window.
    race_check_ = std::make_unique<spark::hb::ScopedRaceCheck>(true);
  }
  for (const auto& factory : systems::AllEngineVariantFactories()) {
    if (!options_.variants.empty()) {
      bool wanted = false;
      for (const auto& name : options_.variants) {
        wanted |= name == factory.name;
      }
      if (!wanted) continue;
    }
    auto engine = factory.make(sc_);
    // The server runs the admission gate itself (once per request, before
    // the cache lookup), so the engines' internal per-Execute gate would
    // only duplicate the analysis.
    engine->set_debug_check_queries(false);
    engine->set_debug_check_plans(options_.verify_plans);
    // Same takeover for Tier C: the server owns the recorder window; an
    // engine-level gate would reset it under concurrent requests.
    engine->set_debug_check_races(false);
    engines_.emplace(factory.name, std::move(engine));
  }
  workers_.reserve(static_cast<size_t>(options_.worker_threads));
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryServer::~QueryServer() { Shutdown(); }

void QueryServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  // Fail whatever was still queued, so no ticket waits forever.
  std::vector<Request> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, tenant] : tenants_) {
      while (!tenant->queue.empty()) {
        orphans.push_back(std::move(tenant->queue.front()));
        tenant->queue.pop_front();
      }
    }
    queued_ = 0;
  }
  for (auto& request : orphans) {
    RequestResult result;
    result.status = Status::Unsupported("server shut down");
    result.rejected = true;
    Finish(request, std::move(result));
  }
}

Status QueryServer::AttachDataset(const rdf::TripleStore& store) {
  // Exclusive: wait out in-flight requests, block new ones while loading.
  std::unique_lock<std::shared_mutex> dataset_lock(dataset_mu_);
  // Query paths must never mutate the dictionary once tenants can reach
  // it; a frozen dictionary turns any such bug into a debug assert instead
  // of a data race (see rdf/dictionary.h).
  store.dictionary().Freeze();
  for (auto& [name, engine] : engines_) {
    auto loaded = engine->Load(store);
    if (!loaded.ok()) {
      return Status::Internal(name + ": dataset load failed: " +
                              loaded.status().ToString());
    }
  }
  store_ = &store;
  uint64_t epoch = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  cache_.InvalidateExcept(epoch);
  {
    // Audit profiles captured actuals against the old dataset; the next
    // audit trip per slow pattern re-captures against the new epoch.
    std::lock_guard<std::mutex> lock(audit_mu_);
    audit_profiles_.clear();
  }
  if (telemetry_ != nullptr) {
    // In-flight requests drained above (exclusive dataset lock), so every
    // tenant clock is settled and the swap's virtual timestamp is
    // deterministic.
    telemetry_->RecordDatasetSwap(epoch, store.size());
  }
  return Status::OK();
}

int QueryServer::OpenSession(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tenants_.find(tenant) == tenants_.end()) {
    tenants_.emplace(tenant, std::make_unique<TenantState>());
    tenant_order_.push_back(tenant);
  }
  sessions_.push_back(SessionInfo{tenant});
  return static_cast<int>(sessions_.size()) - 1;
}

std::shared_ptr<QueryServer::Ticket> QueryServer::Submit(
    int session_id, const std::string& variant, std::string query_text) {
  auto ticket = std::make_shared<Ticket>();
  Request request;
  request.ticket = ticket;
  request.variant = variant;
  request.text = std::move(query_text);
  request.enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (session_id < 0 ||
        static_cast<size_t>(session_id) >= sessions_.size()) {
      RequestResult result;
      result.status = Status::InvalidArgument(
          "unknown session id " + std::to_string(session_id));
      result.rejected = true;
      std::lock_guard<std::mutex> ticket_lock(ticket->mu_);
      ticket->result_ = std::move(result);
      ticket->done_ = true;
      ticket->cv_.notify_all();
      return ticket;
    }
    request.session_id = session_id;
    request.tenant = sessions_[static_cast<size_t>(session_id)].tenant;
    request.sequence = next_sequence_++;
    TenantState& tenant = *tenants_.at(request.tenant);
    // tenant_seq doubles as the telemetry ordering key: every submitted
    // request — including ones rejected right here — must reach the sink
    // exactly once, in this order.
    request.tenant_seq = tenant.stats.submitted;
    ++tenant.stats.submitted;
    if (!stopping_) {
      tenant.queue.push_back(std::move(request));
      ++queued_;
      request.ticket = nullptr;  // queue owns it now
    }
  }
  if (request.ticket != nullptr) {
    // Submitted during shutdown: reject through the ordinary Finish path,
    // so the ledger (submitted = completed + rejected + failed) balances
    // and the telemetry sink sees the sequence number we just consumed.
    RequestResult result;
    result.status = Status::Unsupported("server shut down");
    result.rejected = true;
    result.tenant = request.tenant;
    result.variant = request.variant;
    result.sequence = request.sequence;
    Finish(request, std::move(result));
    return ticket;
  }
  work_cv_.notify_one();
  return ticket;
}

RequestResult QueryServer::Execute(int session_id, const std::string& variant,
                                   std::string query_text) {
  return Submit(session_id, variant, std::move(query_text))->Wait();
}

std::vector<std::string> QueryServer::variant_names() const {
  std::vector<std::string> names;
  names.reserve(engines_.size());
  for (const auto& [name, engine] : engines_) names.push_back(name);
  return names;
}

std::vector<QueryServer::VariantInfo> QueryServer::variants() const {
  std::vector<VariantInfo> out;
  out.reserve(engines_.size());
  for (const auto& [name, engine] : engines_) {
    out.push_back(VariantInfo{name, engine->traits().fragment});
  }
  return out;
}

TenantStats QueryServer::tenant_stats(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return TenantStats{};
  return it->second->stats;
}

std::vector<std::string> QueryServer::tenant_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenant_order_;
}

std::vector<systems::plan::Diagnostic> QueryServer::race_findings() const {
  if (race_check_ == nullptr || !race_check_->owner()) return {};
  return spark::hb::Recorder::Get().Analyze();
}

std::string QueryServer::MetricsText() const {
  std::string out;
  if (telemetry_ != nullptr) out += telemetry_->PrometheusText();
  out += obs::ExpositionForMetrics(sc_->metrics(), "rdfspark_");
  return out;
}

void QueryServer::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || queued_ > 0; });
    if (stopping_) return;
    // Fair dispatch: scan tenants round-robin from the cursor, take the
    // head of the first non-empty queue, and advance the cursor past that
    // tenant so a bursty tenant cannot monopolize the workers.
    Request request;
    bool found = false;
    size_t n = tenant_order_.size();
    for (size_t i = 0; i < n; ++i) {
      size_t slot = (rr_next_ + i) % n;
      TenantState& tenant = *tenants_.at(tenant_order_[slot]);
      if (tenant.queue.empty()) continue;
      request = std::move(tenant.queue.front());
      tenant.queue.pop_front();
      --queued_;
      rr_next_ = (slot + 1) % n;
      found = true;
      break;
    }
    if (!found) continue;  // Raced another worker; re-wait.
    lock.unlock();
    {
      // Shared with other workers; exclusive against AttachDataset.
      std::shared_lock<std::shared_mutex> dataset_lock(dataset_mu_);
      // Tier C: each request is its own logical root — two requests are
      // ordered only by declared synchronization (locks, publication
      // barriers), which is exactly what the checker verifies.
      spark::hb::RootScope request_root;
      obs::RequestRecord rec;
      RequestResult result = Process(request, &rec);
      // Finish (stats + telemetry ingest) stays under the dataset lock so
      // a hot swap can never observe a request executed but not yet
      // ingested — the swap's virtual timestamp sees settled clocks.
      Finish(request, std::move(result), std::move(rec));
    }
    lock.lock();
  }
}

RequestResult QueryServer::Process(const Request& request,
                                   obs::RequestRecord* rec) {
  RequestResult result;
  result.tenant = request.tenant;
  result.variant = request.variant;
  result.sequence = request.sequence;

  auto engine_it = engines_.find(request.variant);
  if (engine_it == engines_.end()) {
    result.status = Status::InvalidArgument("unknown engine variant: " +
                                            request.variant);
    result.rejected = true;
    return result;
  }
  systems::BgpEngineBase* engine = engine_it->second.get();
  if (store_ == nullptr) {
    result.status = Status::Internal("no dataset attached");
    result.rejected = true;
    return result;
  }

  auto parsed = sparql::ParseQuery(request.text);
  if (!parsed.ok()) {
    result.status = parsed.status();
    result.rejected = true;
    return result;
  }
  const sparql::Query& query = *parsed;

  // Admission: Tier A analysis once per request, before any planning.
  if (options_.verify_queries) {
    std::vector<systems::plan::Diagnostic> errors =
        systems::plan::ErrorsOnly(engine->AnalyzeParsedQuery(query));
    if (!errors.empty()) {
      result.status = Status::InvalidArgument(
          "admission rejected:\n" +
          systems::plan::FormatDiagnostics(errors));
      result.rejected = true;
      return result;
    }
  }

  // Per-request operator scope: every charge made while this thread (and
  // the pool tasks it spawns) executes the query is attributed to this
  // request, which is what makes the per-tenant execution counters clean
  // under concurrency.
  auto op = std::make_shared<spark::OpStats>();
  sparql::BindingTable table;
  /// Plan root the request executed (null on the bypass/Execute path) —
  /// its cardinality estimate is the only one observable without a
  /// re-execution, so it drives the audit's estimate-error trigger.
  std::shared_ptr<const systems::plan::PlanNode> executed_root;
  {
    spark::OpScopeGuard scope(op);
    uint64_t epoch = dataset_epoch();
    rec->epoch = epoch;
    std::shared_ptr<const systems::plan::PlanNode> plan;
    bool cacheable = engine->ReusablePlans();
    std::string normalized;
    if (cacheable) {
      normalized = sparql::ToSparql(query);
      plan = cache_.Get(request.variant, normalized, epoch);
      rec->cache_key = request.variant + "\n" + normalized;
    }
    // Tier D budget gate over an obtained plan (cache hit or fresh): pure
    // static analysis, so rejection happens before a single operator runs
    // and is deterministic — the same plan against the same budget always
    // decides the same way, regardless of worker count or cache state.
    // Also records the envelope for the telemetry calibration pair even
    // when no budget is set.
    auto budget_check =
        [&](const systems::plan::ResourceAnalysis& analysis) -> Status {
      result.envelope_bytes = analysis.bounded ? analysis.peak_bytes : 0;
      rec->envelope_bytes = result.envelope_bytes;
      if (options_.memory_budget_bytes != 0 && analysis.bounded &&
          analysis.peak_bytes > options_.memory_budget_bytes) {
        return Status::InvalidArgument(
            "budget gate: static peak envelope of " +
            std::to_string(analysis.peak_bytes) +
            "B exceeds RDFSPARK_MEMORY_BUDGET of " +
            std::to_string(options_.memory_budget_bytes) + "B");
      }
      return Status::OK();
    };
    if (plan != nullptr) {
      result.cache_hit = true;
      if (options_.memory_budget_bytes != 0 || telemetry_ != nullptr) {
        Status admitted =
            budget_check(engine->AnalyzePlanResources(query, *plan));
        if (!admitted.ok()) {
          result.status = admitted;
          result.rejected = true;
          result.budget_rejected = true;
          return result;
        }
      }
      executed_root = plan;
      auto executed = engine->ExecutePlanned(query, *plan);
      if (!executed.ok()) {
        result.status = executed.status();
        return result;
      }
      table = std::move(executed).value();
    } else if (cacheable) {
      auto planned = engine->PlanQuery(query);
      if (planned.ok()) {
        std::shared_ptr<const systems::plan::PlanNode> fresh(
            std::move(planned).value());
        // Insert before the gate: the plan itself is valid (another
        // tenant with a different budget could execute it), and its
        // envelope is exactly the byte charge the cache evicts by.
        systems::plan::ResourceAnalysis envelope =
            engine->AnalyzePlanResources(query, *fresh);
        cache_.Put(request.variant, normalized, epoch, fresh,
                   envelope.bounded ? envelope.peak_bytes : 0);
        Status admitted = budget_check(envelope);
        if (!admitted.ok()) {
          result.status = admitted;
          result.rejected = true;
          result.budget_rejected = true;
          return result;
        }
        executed_root = fresh;
        auto executed = engine->ExecutePlanned(query, *fresh);
        if (!executed.ok()) {
          result.status = executed.status();
          return result;
        }
        table = std::move(executed).value();
      } else if (planned.status().code() == StatusCode::kUnsupported) {
        // Outside the cacheable fragment (group patterns, aggregates):
        // the ordinary Execute path handles it.
        result.cache_bypass = true;
        cache_.RecordBypass();
        auto executed = engine->Execute(query);
        if (!executed.ok()) {
          result.status = executed.status();
          return result;
        }
        table = std::move(executed).value();
      } else {
        // Planning itself failed (including plan-verifier rejections).
        result.status = planned.status();
        return result;
      }
    } else {
      // Single-use-plan engine (S2X): never cache, execute directly.
      result.cache_bypass = true;
      cache_.RecordBypass();
      auto executed = engine->Execute(query);
      if (!executed.ok()) {
        result.status = executed.status();
        return result;
      }
      table = std::move(executed).value();
    }
  }

  result.table = std::move(table);
  result.status = Status::OK();

  // Tier C race gate: analyze the recorder window after execution. A
  // request that raises the ERROR-finding high-water mark is the one
  // whose execution surfaced a new race — its results are withheld and
  // the request counts as *rejected* (distinct from execution failure:
  // the query itself was fine; the server declined to vouch for the
  // answer). Analyze() copies recorder state under its own locks, so
  // concurrent requests may analyze while others record.
  if (options_.check_races && race_check_ != nullptr &&
      race_check_->owner()) {
    uint64_t errors = static_cast<uint64_t>(
        systems::plan::ErrorsOnly(spark::hb::Recorder::Get().Analyze())
            .size());
    uint64_t seen = race_error_high_water_.load(std::memory_order_relaxed);
    bool culprit = false;
    while (errors > seen) {
      if (race_error_high_water_.compare_exchange_weak(
              seen, errors, std::memory_order_relaxed)) {
        culprit = true;
        break;
      }
    }
    if (culprit) {
      result.status = Status::InvalidArgument(
          "race gate: execution raised the happens-before ERROR count to " +
          std::to_string(errors));
      result.rejected = true;
      result.race_rejected = true;
      result.table = sparql::BindingTable();
    }
  }

  // Accumulate the request's operator-scope counters into its tenant, and
  // hand the deterministic per-request costs to the telemetry record.
  rec->busy_ns = op->busy_ns.value();
  rec->rows = result.table.num_rows();
  rec->records = op->records_in.value();
  rec->tasks = op->tasks.value();
  rec->shuffle_bytes = op->shuffle_bytes.value();
  rec->join_comparisons = op->join_comparisons.value();
  {
    std::lock_guard<std::mutex> lock(mu_);
    TenantStats& stats = tenants_.at(request.tenant)->stats;
    stats.records_processed += op->records_in.value();
    stats.tasks += op->tasks.value();
    stats.shuffle_records += op->shuffle_records.value();
    stats.join_comparisons += op->join_comparisons.value();
  }

  // The request's wall-clock latency stops here: the audit capture below
  // is off-path bookkeeping, not service — counting it would make the
  // slowest (audited) requests report audit overhead as request latency.
  result.latency_ms = ElapsedMs(request.enqueued);

  // Slow-query audit: decide on the request's *simulated* latency (and the
  // root operator's estimate error — the only error observable without a
  // re-execution). The capture re-executes with actuals collection OUTSIDE
  // the request's operator scope, so the profiling run never contaminates
  // the tenant's ledger; its charges land on the shared global Metrics
  // like any other execution and stay deterministic (the trigger set is a
  // deterministic function of the virtual timeline). Captures are memoized
  // per (variant, query) within a dataset epoch — see audit_profiles_.
  if (telemetry_ != nullptr && result.status.ok()) {
    double root_err = 0.0;
    if (executed_root != nullptr &&
        executed_root->est_cardinality != systems::plan::kNoEstimate) {
      double est = static_cast<double>(executed_root->est_cardinality);
      double act = static_cast<double>(rec->rows);
      if (est == 0.0 && act == 0.0) {
        root_err = 1.0;
      } else if (est == 0.0 || act == 0.0) {
        root_err = est + act;
      } else {
        root_err = act > est ? act / est : est / act;
      }
    }
    uint64_t sim_latency_ns =
        rec->busy_ns + telemetry_->options().request_overhead_ns;
    obs::AuditDecision decision =
        telemetry_->DecideAudit(request.tenant, sim_latency_ns, root_err);
    if (decision.Any()) {
      rec->audited = true;
      rec->audit_latency_trigger = decision.latency;
      rec->audit_error_trigger = decision.est_error;
      rec->query = request.text;
      const std::string profile_key = request.variant + '\n' + request.text;
      bool memoized = false;
      {
        std::lock_guard<std::mutex> lock(audit_mu_);
        auto it = audit_profiles_.find(profile_key);
        if (it != audit_profiles_.end()) {
          rec->audit_profile = it->second.profile;
          rec->max_est_error = it->second.max_est_error;
          rec->observed_bytes = it->second.observed_bytes;
          rec->pattern_actuals = it->second.pattern_actuals;
          memoized = true;
        }
      }
      if (!memoized) {
        auto analyzed = engine->ExecuteAnalyzed(query);
        if (analyzed.ok()) {
          const systems::plan::PlanNode& root = **analyzed;
          rec->audit_profile = systems::plan::ExplainAnalyze(root);
          rec->max_est_error = systems::plan::MaxEstimateErrorFactor(root);
          // Tier D calibration: the bytes this plan actually materialized,
          // drift-checked against rec->envelope_bytes by the sink.
          rec->observed_bytes =
              systems::plan::ObserveFootprint(root).output_bytes;
          for (const systems::plan::LeafActual& leaf :
               systems::plan::CollectLeafActuals(root)) {
            obs::PatternActual pattern;
            pattern.pattern = leaf.detail;
            pattern.predicate = leaf.predicate;
            pattern.est_rows = leaf.est_rows;
            pattern.actual_rows = leaf.actual_rows;
            rec->pattern_actuals.push_back(std::move(pattern));
          }
        } else {
          rec->audit_profile =
              "analyze failed: " + analyzed.status().ToString();
          rec->max_est_error = root_err;
        }
        // Two workers racing the same key both capture (the content is
        // deterministic, so either insert is correct); last writer wins.
        std::lock_guard<std::mutex> lock(audit_mu_);
        audit_profiles_[profile_key] =
            AuditProfile{rec->audit_profile, rec->max_est_error,
                         rec->observed_bytes, rec->pattern_actuals};
      }
    }
  }
  return result;
}

void QueryServer::Finish(const Request& request, RequestResult result,
                         obs::RequestRecord rec) {
  // latency_ms was stamped by Process before any audit capture; requests
  // that never reached that point (e.g. unknown variant) stamp here.
  if (result.latency_ms == 0.0) result.latency_ms = ElapsedMs(request.enqueued);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(request.tenant);
    if (it != tenants_.end()) {
      TenantStats& stats = it->second->stats;
      if (result.rejected) {
        ++stats.rejected;
        if (result.race_rejected) ++stats.race_rejected;
        if (result.budget_rejected) ++stats.budget_rejected;
      } else if (result.status.ok()) {
        ++stats.completed;
        stats.rows_returned += result.table.num_rows();
      } else {
        ++stats.failed;
      }
      if (result.cache_hit) ++stats.cache_hits;
      if (result.cache_bypass) ++stats.cache_bypasses;
      stats.latency_ns.Record(
          static_cast<uint64_t>(result.latency_ms * 1e6));
    }
  }
  // Telemetry: outcome classification mirrors the ledger above exactly.
  // Wall-clock latency deliberately stays out of the record — the sink's
  // timeline is virtual (see obs/telemetry.h).
  if (telemetry_ != nullptr && !request.tenant.empty()) {
    rec.tenant = request.tenant;
    rec.tenant_seq = request.tenant_seq;
    rec.variant = request.variant;
    if (result.rejected) {
      if (result.race_rejected) {
        rec.outcome = obs::RequestRecord::Outcome::kRaceRejected;
      } else if (result.budget_rejected) {
        rec.outcome = obs::RequestRecord::Outcome::kBudgetRejected;
      } else {
        rec.outcome = obs::RequestRecord::Outcome::kRejected;
      }
    } else if (result.status.ok()) {
      rec.outcome = obs::RequestRecord::Outcome::kOk;
    } else {
      rec.outcome = obs::RequestRecord::Outcome::kFailed;
    }
    if (!result.status.ok()) rec.detail = result.status.ToString();
    rec.cache_bypass = result.cache_bypass;
    telemetry_->Ingest(std::move(rec));
  }
  // One span per served request on the driver lane, in the same stream as
  // the job/stage/task spans the execution itself recorded. Named by the
  // per-tenant sequence — the same span id the slow-query audit records —
  // so a span is addressable from the audit log regardless of worker
  // interleaving.
  if (sc_->tracer().enabled()) {
    sc_->tracer().Record(
        spark::SpanKind::kServe,
        "serve " + request.tenant + "#" + std::to_string(request.tenant_seq) +
            " " + request.variant,
        sc_->metrics().simulated_ms.nanos(), 0, /*lane=*/-1,
        result.table.num_rows());
  }
  std::shared_ptr<Ticket> ticket = request.ticket;
  {
    std::lock_guard<std::mutex> ticket_lock(ticket->mu_);
    ticket->result_ = std::move(result);
    ticket->done_ = true;
  }
  ticket->cv_.notify_all();
}

}  // namespace rdfspark::serving
