#ifndef RDFSPARK_SERVING_PLAN_CACHE_H_
#define RDFSPARK_SERVING_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "systems/plan/plan.h"

namespace rdfspark::serving {

/// Counters of one PlanCache; a consistent snapshot taken under the cache
/// lock. hits + misses + bypasses = cacheable-path lookups issued.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Requests that could not use the cache at all: engines whose plans are
  /// single-use (S2X), or queries outside the cacheable fragment (groups
  /// with FILTER/OPTIONAL/UNION, aggregates, CONSTRUCT/DESCRIBE).
  uint64_t bypasses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;  ///< Entries dropped by epoch change.
  uint64_t entries = 0;        ///< Current resident entries.
  /// Sum of the resident entries' static envelope bytes (Tier D peak
  /// envelope charged at insert; 0 for plans with no bounded envelope).
  uint64_t resident_bytes = 0;
  uint64_t evicted_bytes = 0;  ///< Envelope bytes reclaimed by eviction.
};

/// Shared cache of verified physical plans, keyed by
/// (engine variant, normalized query text, dataset epoch).
///
/// Normalization is sparql::ToSparql over the parsed query, so two texts
/// differing only in whitespace/formatting share an entry. The dataset
/// epoch is part of the key *and* checked on insert: after AttachDataset
/// bumps the server epoch, every old entry both misses (key mismatch) and
/// is actively dropped (InvalidateExcept), so a reload can never serve a
/// plan built against the previous dataset's dictionary ids.
///
/// Entries are shared_ptr<const PlanNode>: execution only reads the plan
/// tree (the executor mutates nodes only in collect_actuals mode, which
/// the serving path never uses), so one cached plan may be executed by any
/// number of concurrent requests. Engines whose plans are single-use
/// (ReusablePlans() == false) must never be inserted — callers route them
/// through RecordBypass instead.
///
/// Thread-safe; eviction is LRU, bounded two ways: a fixed entry capacity
/// (the legacy backstop) and, when `byte_budget` is non-zero, the sum of
/// the cached plans' static peak envelopes (Tier D, charged at insert).
/// The byte budget is the primary bound — a cache full of small star
/// lookups holds many more plans than one full of wide snowflake joins —
/// and the most recently inserted entry is never evicted, so one
/// over-budget plan still caches rather than thrashing.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 256, uint64_t byte_budget = 0)
      : capacity_(capacity), byte_budget_(byte_budget) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan or null (counting a hit / miss).
  std::shared_ptr<const systems::plan::PlanNode> Get(
      const std::string& engine, const std::string& normalized_query,
      uint64_t epoch);

  /// Inserts (refreshing LRU position if the key raced another insert).
  /// `envelope_bytes` is the plan's static peak envelope, charged against
  /// the byte budget while the entry stays resident; pass 0 when the
  /// envelope is unbounded (the entry then only counts against capacity).
  void Put(const std::string& engine, const std::string& normalized_query,
           uint64_t epoch, std::shared_ptr<const systems::plan::PlanNode> plan,
           uint64_t envelope_bytes = 0);

  /// Counts a request that bypassed the cache entirely.
  void RecordBypass();

  /// Drops every entry whose epoch differs from `epoch` (dataset reload).
  void InvalidateExcept(uint64_t epoch);

  PlanCacheStats stats() const;

  size_t capacity() const { return capacity_; }
  uint64_t byte_budget() const { return byte_budget_; }

 private:
  struct Entry {
    std::string key;
    uint64_t epoch;
    std::shared_ptr<const systems::plan::PlanNode> plan;
    uint64_t envelope_bytes = 0;
  };

  static std::string MakeKey(const std::string& engine,
                             const std::string& normalized_query,
                             uint64_t epoch);

  /// Stable Tier C identity (lazily assigned on first instrumented access).
  int64_t HbId() const;

  size_t capacity_;
  uint64_t byte_budget_;
  uint64_t resident_bytes_ = 0;  ///< Guarded by mu_.
  mutable std::mutex mu_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  PlanCacheStats stats_;
  mutable std::atomic<int64_t> hb_id_{0};
};

}  // namespace rdfspark::serving

#endif  // RDFSPARK_SERVING_PLAN_CACHE_H_
