#include "serving/plan_cache.h"

#include "spark/hb.h"

namespace rdfspark::serving {

namespace hb = spark::hb;

int64_t PlanCache::HbId() const { return hb::StableId(&hb_id_); }

std::string PlanCache::MakeKey(const std::string& engine,
                               const std::string& normalized_query,
                               uint64_t epoch) {
  // '\x1f' (unit separator) cannot occur in engine names or serialized
  // SPARQL, so the concatenation is injective.
  return engine + '\x1f' + std::to_string(epoch) + '\x1f' + normalized_query;
}

std::shared_ptr<const systems::plan::PlanNode> PlanCache::Get(
    const std::string& engine, const std::string& normalized_query,
    uint64_t epoch) {
  std::string key = MakeKey(engine, normalized_query, epoch);
  hb::TrackedLock lock(mu_);
  // Writes even on the lookup path: Get mutates the LRU list and counters.
  hb::RecordAccess(hb::PlanCacheObject(HbId()), hb::Access::kWrite,
                   "PlanCache::Get");
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // Refresh recency.
  return it->second->plan;
}

void PlanCache::Put(const std::string& engine,
                    const std::string& normalized_query, uint64_t epoch,
                    std::shared_ptr<const systems::plan::PlanNode> plan,
                    uint64_t envelope_bytes) {
  std::string key = MakeKey(engine, normalized_query, epoch);
  hb::TrackedLock lock(mu_);
  hb::RecordAccess(hb::PlanCacheObject(HbId()), hb::Access::kWrite,
                   "PlanCache::Put");
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Two requests planned the same query concurrently; keep the first
    // insert (both plans are equivalent) and refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{std::move(key), epoch, std::move(plan),
                        envelope_bytes});
  index_.emplace(lru_.front().key, lru_.begin());
  resident_bytes_ += envelope_bytes;
  // Evict by bytes first (the primary budget), entries as the backstop;
  // the just-inserted front entry is never evicted.
  while (lru_.size() > 1 &&
         (lru_.size() > capacity_ ||
          (byte_budget_ != 0 && resident_bytes_ > byte_budget_))) {
    resident_bytes_ -= lru_.back().envelope_bytes;
    stats_.evicted_bytes += lru_.back().envelope_bytes;
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = lru_.size();
}

void PlanCache::RecordBypass() {
  hb::TrackedLock lock(mu_);
  hb::RecordAccess(hb::PlanCacheObject(HbId()), hb::Access::kWrite,
                   "PlanCache::RecordBypass");
  ++stats_.bypasses;
}

void PlanCache::InvalidateExcept(uint64_t epoch) {
  hb::TrackedLock lock(mu_);
  hb::RecordAccess(hb::PlanCacheObject(HbId()), hb::Access::kWrite,
                   "PlanCache::InvalidateExcept");
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->epoch != epoch) {
      resident_bytes_ -= it->envelope_bytes;
      index_.erase(it->key);
      it = lru_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
  stats_.entries = lru_.size();
}

PlanCacheStats PlanCache::stats() const {
  hb::TrackedLock lock(mu_);
  hb::RecordAccess(hb::PlanCacheObject(HbId()), hb::Access::kRead,
                   "PlanCache::stats");
  PlanCacheStats out = stats_;
  out.entries = lru_.size();
  out.resident_bytes = resident_bytes_;
  return out;
}

}  // namespace rdfspark::serving
