#ifndef RDFSPARK_SERVING_QUERY_SERVER_H_
#define RDFSPARK_SERVING_QUERY_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/telemetry.h"
#include "rdf/store.h"
#include "serving/plan_cache.h"
#include "spark/context.h"
#include "spark/hb.h"
#include "spark/metrics.h"
#include "sparql/binding.h"
#include "systems/engine.h"
#include "systems/plan/diagnostics.h"

namespace rdfspark::serving {

/// Outcome of one served request.
struct RequestResult {
  Status status;  ///< OK, or the parse/admission/execution error.
  sparql::BindingTable table;
  bool cache_hit = false;     ///< Executed a plan another request built.
  bool cache_bypass = false;  ///< Ran outside the plan cache entirely.
  bool rejected = false;      ///< Failed admission (never planned/executed).
  bool race_rejected = false;  ///< Rejected by the Tier C race gate: the
                               ///< request's results were withheld because
                               ///< new ERROR-level happens-before findings
                               ///< appeared while it executed.
  bool budget_rejected = false;  ///< Rejected by the Tier D envelope gate:
                                 ///< the plan's static peak envelope
                                 ///< exceeded RDFSPARK_MEMORY_BUDGET, so it
                                 ///< was never executed.
  /// Static peak envelope of the plan the request executed (or would have
  /// executed); 0 when no Tier D analysis ran or the envelope is unbounded.
  uint64_t envelope_bytes = 0;
  double latency_ms = 0.0;    ///< Wall-clock queue + execution latency.
  std::string tenant;
  std::string variant;
  uint64_t sequence = 0;  ///< Server-wide admission order of this request.
};

/// Per-tenant serving counters; snapshot taken under the server's stats
/// lock, so the totals are mutually consistent.
struct TenantStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;  ///< Finished OK (admission + execution).
  uint64_t rejected = 0;   ///< Failed the admission gate, parse, or the
                           ///< race gate (race_rejected is the subset).
  uint64_t race_rejected = 0;  ///< Tier C race-gate rejections. Counted
                               ///< inside `rejected`, never in `failed`:
                               ///< the ledger submitted = completed +
                               ///< rejected + failed always balances.
  uint64_t budget_rejected = 0;  ///< Tier D envelope-gate rejections —
                                 ///< like race_rejected, a subset of
                                 ///< `rejected`, so the ledger still
                                 ///< balances.
  uint64_t failed = 0;     ///< Admitted but failed during execution.
  uint64_t rows_returned = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_bypasses = 0;
  // Execution-side counters, attributed per request through the operator
  // scope mechanism (OpStats), so concurrent tenants do not contaminate
  // each other the way the global Metrics totals do.
  uint64_t records_processed = 0;
  uint64_t tasks = 0;
  uint64_t shuffle_records = 0;
  uint64_t join_comparisons = 0;
  spark::Histogram latency_ns;  ///< Wall-clock request latency.
};

/// Concurrent multi-tenant SPARQL front end over the reproduced engines.
///
/// One server owns one instance of each requested engine variant, all bound
/// to the caller's SparkContext (one simulated cluster shared by every
/// tenant, as a real Spark deployment would share its executors). Requests
/// enter per-tenant FIFO queues; a pool of driver threads dispatches them
/// round-robin across tenants, so one tenant's burst cannot starve the
/// others — and underneath, the TaskScheduler interleaves the partition
/// tasks of in-flight queries the same way (see spark/scheduler.h).
///
/// Request path: parse → admission (Tier A query analysis, ERROR findings
/// reject before anything is planned) → plan-cache lookup keyed by
/// (variant, normalized query, dataset epoch) → Tier D budget gate (the
/// plan's static peak envelope against RDFSPARK_MEMORY_BUDGET, when set —
/// an over-envelope query is rejected before a single operator runs) →
/// execute. Cacheable plans are verified once at insert (when verify_plans
/// is on), charged their envelope against the cache's byte budget, and
/// shared by concurrent executions; non-cacheable shapes and
/// single-use-plan engines (S2X) fall through to the engine's ordinary
/// Execute path (which the budget gate cannot cover — no plan to analyze).
///
/// AttachDataset freezes the dataset's dictionary (query paths are
/// read-only from then on; see rdf/dictionary.h), loads every engine, and
/// bumps the dataset epoch, which both re-keys and actively invalidates
/// the plan cache — a reload can never serve a stale plan.
///
/// Determinism: the binding tables a query produces are bit-identical
/// whether the server runs one worker or many (the scheduler's invariance
/// property extended to the serving layer); only queue latency and the
/// shared global Metrics depend on concurrency.
class QueryServer {
 public:
  struct Options {
    /// Engine variant names to serve (see AllEngineVariantFactories());
    /// empty = all twelve.
    std::vector<std::string> variants;
    /// Driver threads executing requests. 1 = the serial reference server
    /// the bit-identity tests compare against.
    int worker_threads = 4;
    size_t plan_cache_capacity = 256;
    /// Byte budget for the plan cache: cached plans are charged their
    /// static peak envelope and evicted LRU when the sum exceeds this.
    /// 0 = entries-only eviction (the capacity backstop still applies).
    uint64_t plan_cache_byte_budget = 0;
    /// Tier D admission gate: reject a request before execution when its
    /// plan's static peak envelope (bounded) exceeds this many bytes.
    /// Defaults to the RDFSPARK_MEMORY_BUDGET environment variable
    /// (decimal bytes); 0 = gate off. Unbounded envelopes are admitted —
    /// the static tier already flags them as RS003, and rejecting on "no
    /// information" would block every engine without scan annotations.
    /// Only planned executions are gated: the bypass path (non-cacheable
    /// shapes, single-use-plan engines) has no plan to analyze.
    uint64_t memory_budget_bytes;
    /// Admission gate: run Tier A query analysis per request and reject on
    /// ERROR findings. Defaults to the RDFSPARK_VERIFY_QUERIES environment
    /// variable (set and non-empty), like the engines' own gate — which
    /// the server takes over, so analysis runs once per request, not twice.
    bool verify_queries;
    /// Verify cacheable plans before first execution (and every uncached
    /// execution, via the engines' gate). Defaults to RDFSPARK_VERIFY_PLANS.
    bool verify_plans;
    /// Tier C gate: when on, the server owns one happens-before recorder
    /// window for its whole lifetime. Each request executes as a fresh
    /// logical root, so two requests are ordered only by the
    /// synchronization the code declares (locks, publication barriers) —
    /// exactly what race_findings() then verifies. Defaults to the
    /// RDFSPARK_CHECK_RACES environment variable (set and non-empty);
    /// the engines' own per-Execute gate is taken over like verify_queries.
    bool check_races;

    /// Live telemetry pipeline (windowed series, event log, slow-query
    /// audit; see obs/telemetry.h). On by default — the sink is cheap
    /// (one mutex acquisition per finished request) and every artifact is
    /// derived from the deterministic virtual timeline.
    bool telemetry = true;
    obs::TelemetryOptions telemetry_options;

    Options();
  };

  /// Ticket for an in-flight request; Wait() blocks until it completes.
  class Ticket {
   public:
    const RequestResult& Wait();

   private:
    friend class QueryServer;
    std::mutex mu_;
    std::condition_variable cv_;
    bool done_ = false;
    RequestResult result_;
  };

  QueryServer(spark::SparkContext* sc, Options options = Options());
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Loads `store` into every engine, freezes its dictionary, bumps the
  /// dataset epoch and invalidates the plan cache. Blocks until in-flight
  /// requests drain; `store` must outlive the server. May be called again
  /// to hot-swap the dataset.
  Status AttachDataset(const rdf::TripleStore& store);

  uint64_t dataset_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Opens a session for `tenant` (tenants are created on first use).
  /// Returns the session id for Submit.
  int OpenSession(const std::string& tenant);

  /// Enqueues a request on the session's tenant queue. The ticket resolves
  /// when a worker finishes the request.
  std::shared_ptr<Ticket> Submit(int session_id, const std::string& variant,
                                 std::string query_text);

  /// Submit + Wait.
  RequestResult Execute(int session_id, const std::string& variant,
                        std::string query_text);

  /// Names of the variants this server actually serves.
  std::vector<std::string> variant_names() const;

  /// Name plus supported SPARQL fragment of each served variant, so
  /// clients (serve_bench) can build workloads every variant can answer.
  struct VariantInfo {
    std::string name;
    systems::SparqlFragment fragment;
  };
  std::vector<VariantInfo> variants() const;

  TenantStats tenant_stats(const std::string& tenant) const;
  std::vector<std::string> tenant_names() const;
  PlanCacheStats plan_cache_stats() const { return cache_.stats(); }

  /// The telemetry sink, or null when Options::telemetry is off. Exports
  /// (PrometheusText, WriteArtifacts, ...) are safe at any quiescent point.
  obs::TelemetrySink* telemetry() const { return telemetry_.get(); }

  /// Prometheus text exposition: serving telemetry (when enabled) followed
  /// by the SparkContext's cluster-simulator metrics.
  std::string MetricsText() const;

  /// Tier C findings over everything recorded since the server opened its
  /// window (empty when check_races is off). Non-destructive — the window
  /// stays open; call at a quiescent point (after tickets resolved) for a
  /// complete picture of the served workload.
  std::vector<systems::plan::Diagnostic> race_findings() const;

  /// Stops accepting work and joins the workers (pending requests fail
  /// with Unsupported("server shut down")). Idempotent; the destructor
  /// calls it.
  void Shutdown();

 private:
  struct Request {
    int session_id = 0;
    std::string tenant;
    std::string variant;
    std::string text;
    uint64_t sequence = 0;
    /// Per-tenant submission order (0-based); the telemetry sink applies
    /// records in this order, so every tenant's virtual timeline is
    /// independent of worker scheduling.
    uint64_t tenant_seq = 0;
    std::chrono::steady_clock::time_point enqueued;
    std::shared_ptr<Ticket> ticket;
  };

  struct TenantState {
    TenantStats stats;
    std::deque<Request> queue;
  };

  struct SessionInfo {
    std::string tenant;
  };

  void WorkerLoop();
  /// Runs the full request path on the calling worker thread, filling
  /// `rec` with the telemetry payload (deterministic costs, cache key,
  /// audit capture).
  RequestResult Process(const Request& request, obs::RequestRecord* rec);
  void Finish(const Request& request, RequestResult result,
              obs::RequestRecord rec = obs::RequestRecord());

  spark::SparkContext* sc_;
  Options options_;
  PlanCache cache_;

  /// Serving order of tenant queues (insertion order; stable round-robin).
  std::vector<std::string> tenant_order_;
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;
  std::vector<SessionInfo> sessions_;
  size_t rr_next_ = 0;       ///< Round-robin cursor into tenant_order_.
  uint64_t next_sequence_ = 0;
  int queued_ = 0;           ///< Requests waiting in any tenant queue.
  bool stopping_ = false;
  mutable std::mutex mu_;    ///< Guards all queue/session/stats state.
  std::condition_variable work_cv_;

  /// Workers hold this shared while executing; AttachDataset takes it
  /// exclusively so a reload never overlaps a running query.
  std::shared_mutex dataset_mu_;
  const rdf::TripleStore* store_ = nullptr;
  std::atomic<uint64_t> epoch_{0};

  std::map<std::string, std::unique_ptr<systems::BgpEngineBase>> engines_;
  std::vector<std::thread> workers_;

  /// Telemetry sink (null when Options::telemetry is off).
  std::unique_ptr<obs::TelemetrySink> telemetry_;

  /// Memoized EXPLAIN ANALYZE captures for the slow-query audit, keyed by
  /// (variant, query text). A slow query pattern tends to trip the audit on
  /// every repetition; the profile is a deterministic function of
  /// (variant, dataset epoch, query) — PR 4's bit-identity guarantee — so
  /// later trips reuse the first capture instead of re-executing. Cleared
  /// on dataset swap (the map is epoch-scoped, like the plan cache).
  struct AuditProfile {
    std::string profile;
    double max_est_error = 0.0;
    uint64_t observed_bytes = 0;  ///< Actual output bytes (Tier D drift).
    std::vector<obs::PatternActual> pattern_actuals;
  };
  std::map<std::string, AuditProfile> audit_profiles_;
  std::mutex audit_mu_;
  /// Race-gate high-water mark: the most ERROR-level Tier C findings any
  /// finished request has observed. A request that raises it is the one
  /// whose execution surfaced the new finding and gets rejected.
  std::atomic<uint64_t> race_error_high_water_{0};

  /// The server-owned Tier C window (null when check_races is off).
  /// Destroyed after the workers join, so no instrumented work outlives it.
  std::unique_ptr<spark::hb::ScopedRaceCheck> race_check_;
};

}  // namespace rdfspark::serving

#endif  // RDFSPARK_SERVING_QUERY_SERVER_H_
