#ifndef RDFSPARK_OBS_EVENT_LOG_H_
#define RDFSPARK_OBS_EVENT_LOG_H_

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace rdfspark::obs {

/// Typed serving-layer events. Kinds cover the request lifecycle, the
/// plan cache (logical replay, see telemetry.h), dataset hot swaps and the
/// two admission gates.
enum class EventKind : uint8_t {
  kRequestStart,
  kRequestFinish,
  kAdmissionReject,   ///< Tier A query-analysis gate (or parse failure).
  kRaceGateReject,    ///< Tier C happens-before gate (RDFSPARK_CHECK_RACES).
  kBudgetReject,      ///< Tier D envelope gate (RDFSPARK_MEMORY_BUDGET).
  kCacheFill,
  kCacheHit,
  kCacheEvict,
  kCacheInvalidate,
  kDatasetSwap,
  kAuditCapture,      ///< Slow-query audit captured a profile.
  kEnvelopeDrift,     ///< Plan envelope diverged from audited actuals.
};

const char* EventKindName(EventKind k);

/// One event on the simulated timeline. Events sort by the canonical key
/// (t_ns, scope, seq, kind, fields) — a total order over their content, so
/// any set of events renders identically no matter in which order they
/// were appended. Payload fields are kept as sorted-by-name string/number
/// pairs and serialize in that order.
struct Event {
  uint64_t t_ns = 0;
  std::string scope;  ///< Tenant name, or "server" for global events.
  uint64_t seq = 0;   ///< Per-tenant request sequence (0 for globals).
  EventKind kind = EventKind::kRequestStart;
  std::vector<std::pair<std::string, std::string>> str_fields;
  std::vector<std::pair<std::string, uint64_t>> num_fields;

  void AddField(std::string name, std::string value);
  void AddField(std::string name, uint64_t value);

  /// One JSON object, fixed member order:
  /// {"t_ns":..,"kind":"..","scope":"..","seq":..,<fields sorted by name>}.
  std::string ToJson() const;

  bool operator<(const Event& o) const;
};

/// Bounded, canonically ordered event store. Capacity eviction drops the
/// canonically oldest event (smallest key), so at any quiescent point the
/// retained set is "the capacity newest events on the simulated timeline"
/// — a deterministic function of the event set, independent of append
/// order. Dropped counts are reported, never silent.
class EventLog {
 public:
  explicit EventLog(size_t capacity = 4096) : capacity_(capacity) {}

  void Add(Event event);

  size_t size() const { return events_.size(); }
  uint64_t dropped() const { return dropped_; }

  /// Events in canonical order.
  std::vector<Event> Sorted() const;

  /// RFC 8259 array of the retained events (canonical order) wrapped as
  /// {"dropped":N,"events":[...]}; `extra` events (e.g. the cache events a
  /// logical replay synthesizes at export time) are merged in.
  std::string ToJson(const std::vector<Event>& extra = {}) const;

  /// True if at least one retained event has kind `k`.
  bool Covers(EventKind k) const;

 private:
  size_t capacity_;
  std::multiset<Event> events_;
  uint64_t dropped_ = 0;
};

}  // namespace rdfspark::obs

#endif  // RDFSPARK_OBS_EVENT_LOG_H_
