#ifndef RDFSPARK_OBS_PROMETHEUS_H_
#define RDFSPARK_OBS_PROMETHEUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rdfspark::spark {
class Metrics;
}  // namespace rdfspark::spark

namespace rdfspark::obs {

/// Label set for one sample: (name, value) pairs rendered in the given
/// order as {name="value",...}.
using PrometheusLabels = std::vector<std::pair<std::string, std::string>>;

/// Builds Prometheus text exposition format (version 0.0.4): `# HELP` /
/// `# TYPE` headers followed by `name{labels} value` samples. Callers emit
/// metric families in a deterministic order; the builder just formats.
class PrometheusBuilder {
 public:
  /// Starts a metric family: writes HELP/TYPE headers. `type` is one of
  /// "counter", "gauge", "histogram", "summary", "untyped".
  void Family(const std::string& name, const std::string& type,
              const std::string& help);

  void Add(const std::string& name, const PrometheusLabels& labels,
           uint64_t value);
  void Add(const std::string& name, const PrometheusLabels& labels,
           double value);

  const std::string& Text() const { return out_; }

 private:
  void Sample(const std::string& name, const PrometheusLabels& labels,
              const std::string& value);

  std::string out_;
};

/// Line-format checker for Prometheus text exposition: every line must be
/// empty, a `# HELP`/`# TYPE` comment, or a sample
/// `name[{label="value",...}] value [timestamp]` with legal metric/label
/// identifiers and a parseable value. Also enforces that every sample's
/// family was TYPE-declared first. On failure writes a message naming the
/// offending line to `error` (if non-null).
bool CheckPrometheusText(std::string_view text, std::string* error = nullptr);

/// Renders a spark::Metrics snapshot (every numeric field plus the
/// power-of-two histograms as cumulative `_bucket{le=...}` series) with
/// the given metric-name prefix, e.g. "rdfspark_".
std::string ExpositionForMetrics(const spark::Metrics& metrics,
                                 const std::string& prefix);

}  // namespace rdfspark::obs

#endif  // RDFSPARK_OBS_PROMETHEUS_H_
