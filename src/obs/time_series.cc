#include "obs/time_series.h"

#include <algorithm>

namespace rdfspark::obs {

const char* ScopeKindName(ScopeKind k) {
  switch (k) {
    case ScopeKind::kTotal:
      return "total";
    case ScopeKind::kTenant:
      return "tenant";
    case ScopeKind::kVariant:
      return "variant";
  }
  return "?";
}

uint64_t WindowSpec::FirstWindowStart(uint64_t t) const {
  // Window starts are the multiples of stride; window [s, s + width)
  // contains t iff s <= t and s > t - width. The lowest such start:
  uint64_t lowest = t < width_ns ? 0 : ((t - width_ns) / stride_ns + 1) * stride_ns;
  return lowest;
}

uint64_t WindowSpec::WindowsPerInstant() const {
  return (width_ns + stride_ns - 1) / stride_ns;
}

template <typename Fn>
void WindowedRegistry::ForEachWindow(const SeriesId& id, uint64_t t_ns,
                                     SeriesKind kind, Fn&& fn) {
  for (uint64_t start = spec_.FirstWindowStart(t_ns);
       start <= t_ns && start + spec_.width_ns > t_ns;
       start += spec_.stride_ns) {
    Cell& cell = windows_[start][id];
    cell.kind = kind;
    if (kind == SeriesKind::kHistogram && cell.hist == nullptr) {
      cell.hist = std::make_unique<LatencyHistogram>();
    }
    fn(cell);
    if (start > ~0ull - spec_.stride_ns) break;  // overflow guard
  }
}

void WindowedRegistry::Add(const SeriesId& id, uint64_t t_ns, int64_t delta) {
  ForEachWindow(id, t_ns, SeriesKind::kCounter,
                [delta](Cell& cell) { cell.counter += delta; });
}

void WindowedRegistry::SetMax(const SeriesId& id, uint64_t t_ns, uint64_t v) {
  ForEachWindow(id, t_ns, SeriesKind::kGauge,
                [v](Cell& cell) { cell.gauge = std::max(cell.gauge, v); });
}

void WindowedRegistry::Observe(const SeriesId& id, uint64_t t_ns, uint64_t v) {
  ForEachWindow(id, t_ns, SeriesKind::kHistogram,
                [v](Cell& cell) { cell.hist->Record(v); });
}

std::vector<WindowedRegistry::WindowSnapshot> WindowedRegistry::Snapshot()
    const {
  std::vector<WindowSnapshot> out;
  out.reserve(windows_.size());
  for (const auto& [start, window] : windows_) {
    WindowSnapshot snap;
    snap.start_ns = start;
    snap.end_ns = start + spec_.width_ns;
    for (const auto& [id, cell] : window) {
      snap.series.emplace(id, &cell);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace rdfspark::obs
