#ifndef RDFSPARK_OBS_TELEMETRY_H_
#define RDFSPARK_OBS_TELEMETRY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/audit.h"
#include "obs/event_log.h"
#include "obs/histogram.h"
#include "obs/time_series.h"

namespace rdfspark::obs {

/// Configuration of the serving telemetry pipeline.
struct TelemetryOptions {
  WindowSpec window;
  size_t event_capacity = 4096;
  /// Virtual cost charged per request on top of the operators' busy_ns, so
  /// zero-cost requests (admission rejects, parse failures) still advance
  /// the tenant's virtual clock.
  uint64_t request_overhead_ns = 200'000;
  /// Capacity of the logical plan-cache model replayed at export time.
  /// Wired to the server's plan_cache_capacity.
  size_t logical_cache_capacity = 256;
  /// Envelope-vs-actual calibration (Tier D / RS006 at the serving layer):
  /// when an audited request carries both a static envelope and observed
  /// bytes, an envelope_drift event fires if the envelope exceeds
  /// `envelope_drift_bound` times the observed bytes — or under-estimates
  /// them at all, which is a soundness violation. Mirrors
  /// systems::plan::kEnvelopeDriftBound.
  double envelope_drift_bound = 16.0;
  AuditOptions audit;
};

/// Everything the serving layer reports about one finished request.
/// Deliberately excludes wall-clock values: the pipeline's timeline is
/// per-tenant *virtual* time, advanced by the deterministic simulated cost
/// of each request, so every derived artifact is bit-identical across
/// executor-thread counts.
struct RequestRecord {
  std::string tenant;
  /// Per-tenant submission sequence (0-based). Assigned under the server
  /// lock at submit; the sink applies records in this order per tenant.
  uint64_t tenant_seq = 0;
  std::string variant;
  uint64_t epoch = 0;  ///< Dataset epoch the request executed against.

  enum class Outcome : uint8_t {
    kOk,
    kRejected,        ///< Tier A admission / parse failure.
    kRaceRejected,    ///< Tier C race gate.
    kBudgetRejected,  ///< Tier D envelope gate (RDFSPARK_MEMORY_BUDGET).
    kFailed,
  };
  Outcome outcome = Outcome::kOk;
  std::string detail;  ///< Status message for non-kOk outcomes.

  /// Normalized query text used as the plan-cache key; empty when the
  /// request never reached the cache (reject/parse failure).
  std::string cache_key;
  bool cache_bypass = false;

  /// Tier D calibration pair: the plan's static peak envelope (0 when no
  /// analysis ran or the envelope is unbounded) and the bytes the audit's
  /// profiled re-execution actually materialized (0 when not audited).
  /// When both are present the sink drift-checks them (envelope_drift).
  uint64_t envelope_bytes = 0;
  uint64_t observed_bytes = 0;

  uint64_t busy_ns = 0;  ///< Sum of operator busy time (deterministic).
  uint64_t rows = 0;
  uint64_t records = 0;
  uint64_t tasks = 0;
  uint64_t shuffle_bytes = 0;
  uint64_t join_comparisons = 0;

  /// Slow-query audit payload (filled by the server when triggered).
  bool audited = false;
  bool audit_latency_trigger = false;
  bool audit_error_trigger = false;
  double max_est_error = 0.0;
  std::string query;          ///< Original query text (audited only).
  std::string audit_profile;  ///< EXPLAIN ANALYZE text (audited only).
  std::vector<PatternActual> pattern_actuals;
};

/// Which audit triggers fire for a request.
struct AuditDecision {
  bool latency = false;
  bool est_error = false;
  bool Any() const { return latency || est_error; }
};

/// Thread-safe collector turning per-request records into the windowed
/// time-series registry, the structured event log, the slow-query audit
/// log and the stats store — all on the per-tenant virtual timeline.
///
/// Determinism: workers may finish one tenant's requests out of order, so
/// the sink buffers records per tenant and applies them in tenant_seq
/// order; each tenant's virtual clock then advances through the same
/// sequence of deterministic costs regardless of scheduling. Plan-cache
/// metrics are NOT taken from the physical cache (whose hit/miss pattern
/// depends on interleaving): they are recomputed at export time by
/// replaying the retained records in canonical (end_ns, tenant, seq)
/// order through a logical LRU model of the same capacity.
class TelemetrySink {
 public:
  explicit TelemetrySink(TelemetryOptions options = TelemetryOptions());

  const TelemetryOptions& options() const { return options_; }

  /// Folds one finished (or rejected) request in. Every submitted request
  /// must be ingested exactly once — per-tenant application stalls at a
  /// missing sequence number otherwise (reported by unapplied()).
  void Ingest(RequestRecord record);

  /// Notes a dataset hot swap to `epoch`. Virtual timestamp = max tenant
  /// clock, which is deterministic when the swap happens at a quiescent
  /// point (the server drains in-flight requests before swapping).
  void RecordDatasetSwap(uint64_t epoch, uint64_t triples);

  /// Which audit triggers fire for a request with the given simulated
  /// latency and root-operator estimate error factor.
  AuditDecision DecideAudit(const std::string& tenant, uint64_t sim_latency_ns,
                            double root_est_error) const;

  /// Records buffered behind a missing tenant_seq (0 at quiescence).
  size_t unapplied() const;

  // ---- Exports (each takes the lock, safe at any quiescent point) ----

  /// Prometheus text: serve-level counters, per-tenant/variant latency
  /// histograms and logical cache metrics.
  std::string PrometheusText() const;

  /// Human-readable per-window table of tenant/variant series.
  std::string WindowsText() const;

  /// {"dropped":N,"events":[...]} — typed events incl. replayed cache
  /// fill/hit/evict/invalidate events.
  std::string EventsJson() const;

  std::string AuditJson() const;
  std::string StatsStoreJson() const;

  /// Machine-readable rollup consumed by tools/serve_monitor: window
  /// geometry plus every window's series values.
  std::string TelemetryJson() const;

  /// Writes metrics.prom, windows.txt, events.json, audit.json,
  /// stats_store.json and telemetry.json under `dir` (created if needed).
  Status WriteArtifacts(const std::string& dir) const;

  /// Number of non-empty windows so far.
  size_t window_count() const;

  /// Audit entries captured so far.
  size_t audit_count() const;

 private:
  struct TenantState {
    uint64_t next_seq = 0;      ///< Next tenant_seq to apply.
    uint64_t clock_ns = 0;      ///< Virtual now.
    std::map<uint64_t, RequestRecord> pending;  ///< Out-of-order buffer.
  };

  /// Compact retained form of an applied record, enough for the logical
  /// cache replay and for rollups.
  struct Applied {
    uint64_t end_ns = 0;
    std::string tenant;
    uint64_t seq = 0;
    std::string cache_key;
    uint64_t epoch = 0;
    bool bypass = false;
    bool ok = false;
    bool is_swap = false;  ///< Swap marker, not a request.
  };

  /// Result of the export-time logical cache replay.
  struct CacheReplay {
    WindowedRegistry windows;  ///< cache_hits / cache_misses / cache_bypass.
    std::vector<Event> events;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t bypasses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
  };

  void Apply(TenantState& tenant, RequestRecord rec);
  CacheReplay ReplayCache() const;
  std::string WindowsTextLocked(const CacheReplay& cache) const;
  std::string TelemetryJsonLocked(const CacheReplay& cache) const;
  std::string PrometheusTextLocked(const CacheReplay& cache) const;

  TelemetryOptions options_;

  mutable std::mutex mu_;
  std::map<std::string, TenantState> tenants_;
  WindowedRegistry registry_;
  EventLog events_;
  SlowQueryAudit audit_;
  StatsStore stats_;
  std::vector<Applied> applied_;
  /// Cumulative (all-time) per-scope totals for the Prometheus surface.
  std::map<SeriesId, int64_t> total_counters_;
  std::map<SeriesId, LatencyHistogram> total_histograms_;
};

}  // namespace rdfspark::obs

#endif  // RDFSPARK_OBS_TELEMETRY_H_
