#include "obs/prometheus.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string_view>

#include "spark/metrics.h"

namespace rdfspark::obs {

namespace {

/// Doubles print with enough digits to round-trip; integral values print
/// as integers so counters stay byte-stable.
std::string FormatValue(double v) {
  if (std::isfinite(v) && v >= 0 &&
      v == static_cast<double>(static_cast<uint64_t>(v))) {
    return std::to_string(static_cast<uint64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string EscapeLabelValue(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

bool IsMetricNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsMetricNameChar(char c) {
  return IsMetricNameStart(c) || std::isdigit(static_cast<unsigned char>(c));
}
bool IsLabelNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsLabelNameChar(char c) {
  return IsLabelNameStart(c) || std::isdigit(static_cast<unsigned char>(c));
}

struct LineChecker {
  std::string_view line;
  size_t pos = 0;

  bool Eof() const { return pos >= line.size(); }
  char Peek() const { return line[pos]; }
  bool Consume(char c) {
    if (Eof() || line[pos] != c) return false;
    ++pos;
    return true;
  }

  bool Name(bool label) {
    if (Eof() || !(label ? IsLabelNameStart(Peek()) : IsMetricNameStart(Peek())))
      return false;
    ++pos;
    while (!Eof() && (label ? IsLabelNameChar(Peek()) : IsMetricNameChar(Peek())))
      ++pos;
    return true;
  }

  bool QuotedValue() {
    if (!Consume('"')) return false;
    while (!Eof()) {
      char c = line[pos++];
      if (c == '\\') {
        if (Eof()) return false;
        char e = line[pos++];
        if (e != '\\' && e != '"' && e != 'n') return false;
      } else if (c == '"') {
        return true;
      }
    }
    return false;
  }

  bool Value() {
    size_t start = pos;
    while (!Eof() && Peek() != ' ') ++pos;
    if (pos == start) return false;
    std::string token(line.substr(start, pos - start));
    if (token == "+Inf" || token == "-Inf" || token == "NaN") return true;
    char* end = nullptr;
    std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0';
  }
};

}  // namespace

void PrometheusBuilder::Family(const std::string& name, const std::string& type,
                               const std::string& help) {
  out_ += "# HELP " + name + " " + help + "\n";
  out_ += "# TYPE " + name + " " + type + "\n";
}

void PrometheusBuilder::Sample(const std::string& name,
                               const PrometheusLabels& labels,
                               const std::string& value) {
  out_ += name;
  if (!labels.empty()) {
    out_ += "{";
    for (size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) out_ += ",";
      out_ += labels[i].first + "=\"" + EscapeLabelValue(labels[i].second) +
              "\"";
    }
    out_ += "}";
  }
  out_ += " " + value + "\n";
}

void PrometheusBuilder::Add(const std::string& name,
                            const PrometheusLabels& labels, uint64_t value) {
  Sample(name, labels, std::to_string(value));
}

void PrometheusBuilder::Add(const std::string& name,
                            const PrometheusLabels& labels, double value) {
  Sample(name, labels, FormatValue(value));
}

bool CheckPrometheusText(std::string_view text, std::string* error) {
  auto fail = [&](size_t line_no, const std::string& msg) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + msg;
    }
    return false;
  };
  std::set<std::string> typed;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view line = text.substr(
        start, nl == std::string_view::npos ? text.size() - start : nl - start);
    ++line_no;
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Comment: "# HELP name ..." / "# TYPE name type" or freeform.
      LineChecker c{line, 1};
      if (!c.Consume(' ')) return fail(line_no, "malformed comment");
      size_t word_start = c.pos;
      while (!c.Eof() && c.Peek() != ' ') ++c.pos;
      std::string_view word = line.substr(word_start, c.pos - word_start);
      if (word != "HELP" && word != "TYPE") continue;  // freeform comment
      if (!c.Consume(' ')) return fail(line_no, "missing metric name");
      size_t name_start = c.pos;
      if (!c.Name(/*label=*/false)) return fail(line_no, "bad metric name");
      std::string name(line.substr(name_start, c.pos - name_start));
      if (word == "TYPE") {
        if (!c.Consume(' ')) return fail(line_no, "missing type");
        std::string_view type = line.substr(c.pos);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return fail(line_no, "unknown metric type");
        }
        typed.insert(name);
      }
      continue;
    }
    LineChecker c{line, 0};
    size_t name_start = c.pos;
    if (!c.Name(/*label=*/false)) return fail(line_no, "bad metric name");
    std::string name(line.substr(name_start, c.pos - name_start));
    // Histogram series carry suffixes; their family is the base name.
    std::string family = name;
    for (std::string_view suffix : {"_bucket", "_sum", "_count"}) {
      if (family.size() > suffix.size() &&
          std::string_view(family).substr(family.size() - suffix.size()) ==
              suffix) {
        std::string base = family.substr(0, family.size() - suffix.size());
        if (typed.count(base) > 0) family = base;
        break;
      }
    }
    if (typed.count(family) == 0) {
      return fail(line_no, "sample for undeclared family " + name);
    }
    if (c.Consume('{')) {
      if (!c.Consume('}')) {
        while (true) {
          if (!c.Name(/*label=*/true)) return fail(line_no, "bad label name");
          if (!c.Consume('=')) return fail(line_no, "missing '='");
          if (!c.QuotedValue()) return fail(line_no, "bad label value");
          if (c.Consume(',')) continue;
          if (c.Consume('}')) break;
          return fail(line_no, "unterminated label set");
        }
      }
    }
    if (!c.Consume(' ')) return fail(line_no, "missing value");
    if (!c.Value()) return fail(line_no, "bad sample value");
    if (c.Consume(' ')) {
      // Optional millisecond timestamp.
      if (!c.Value()) return fail(line_no, "bad timestamp");
    }
    if (!c.Eof()) return fail(line_no, "trailing garbage");
  }
  return true;
}

std::string ExpositionForMetrics(const spark::Metrics& metrics,
                                 const std::string& prefix) {
  PrometheusBuilder b;
  metrics.ForEachNumericField([&](const std::string& name, double value) {
    std::string prom_name = prefix + name;
    std::replace(prom_name.begin(), prom_name.end(), '.', '_');
    // Histogram summary statistics and simulated_ms are point-in-time
    // observations; plain counters are monotone.
    bool gauge = name.find('.') != std::string::npos || name == "simulated_ms";
    b.Family(prom_name, gauge ? "gauge" : "counter",
             "rdfspark cluster-simulator metric " + name);
    b.Add(prom_name, {}, value);
  });
  metrics.ForEachHistogram([&](const std::string& name,
                               const spark::Histogram& hist) {
    std::string prom_name = prefix + name + "_dist";
    b.Family(prom_name, "histogram",
             "rdfspark cluster-simulator distribution " + name);
    uint64_t cumulative = 0;
    for (int i = 0; i < spark::Histogram::kBuckets; ++i) {
      if (hist.bucket(i) == 0) continue;
      cumulative += hist.bucket(i);
      // Bucket i holds values of bit width i: upper bound 2^i - 1.
      uint64_t le = i == 0 ? 0 : (uint64_t{1} << i) - 1;
      b.Add(prom_name + "_bucket", {{"le", std::to_string(le)}}, cumulative);
    }
    b.Add(prom_name + "_bucket", {{"le", "+Inf"}}, hist.count());
    b.Add(prom_name + "_sum", {}, hist.sum());
    b.Add(prom_name + "_count", {}, hist.count());
  });
  return b.Text();
}

}  // namespace rdfspark::obs
