#ifndef RDFSPARK_OBS_HISTOGRAM_H_
#define RDFSPARK_OBS_HISTOGRAM_H_

#include <cstdint>
#include <string>

namespace rdfspark::obs {

/// Mergeable log-linear histogram of uint64 samples (simulated-ns request
/// latencies). HDR-style bucket layout: values below 2^kSubBits are held
/// exactly (one bucket per value); above that, each power-of-two octave is
/// split into 2^kSubBits linear sub-buckets, bounding the relative
/// quantile error at 2^-kSubBits (6.25%).
///
/// Everything the telemetry pipeline needs from a distribution is a
/// deterministic function of the bucket counts:
///  - Merge is element-wise addition — associative and commutative, so a
///    window's histogram is bit-identical no matter in which order (or
///    from how many threads' worth of requests) its samples arrived.
///  - ValueAtQuantile returns the *upper bound* of the bucket holding the
///    target rank: exact for samples below 2^kSubBits or samples that sit
///    on bucket upper bounds, within 6.25% otherwise, and never dependent
///    on insertion order.
///
/// Unlike spark::Histogram (atomic counters charged from live partition
/// tasks), this type has plain value semantics: the telemetry sink only
/// touches it under its own lock, and snapshots copy it freely.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr uint64_t kSubCount = 1ull << kSubBits;  // 16
  /// Octaves [kSubBits, 63] each contribute kSubCount buckets on top of
  /// the kSubCount exact small-value buckets.
  static constexpr int kBuckets =
      static_cast<int>(kSubCount) + (64 - kSubBits) * static_cast<int>(kSubCount);

  void Record(uint64_t v, uint64_t count = 1);

  /// Element-wise addition of counts/sum and max/min folding.
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max_value() const { return max_; }
  uint64_t min_value() const { return count_ == 0 ? 0 : min_; }
  uint64_t bucket(int i) const { return buckets_[i]; }

  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Upper bound of the bucket containing the sample of rank
  /// ceil(q * count) (q in [0,1]; q=0 is the minimum bucket), clamped to
  /// the recorded max so the top quantiles are exact. 0 when empty.
  uint64_t ValueAtQuantile(double q) const;

  /// Bucket index of `v` (exact value for v < kSubCount).
  static int BucketOf(uint64_t v);

  /// Largest value mapping to bucket `i` — what ValueAtQuantile reports.
  static uint64_t BucketUpperBound(int i);

  /// "count=3 p50=12 p99=40 max=41 mean=17.7" one-liner for text tables.
  std::string Summary() const;

  bool operator==(const LatencyHistogram& other) const;

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
  uint64_t min_ = ~0ull;
};

}  // namespace rdfspark::obs

#endif  // RDFSPARK_OBS_HISTOGRAM_H_
