#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace rdfspark::obs {

int LatencyHistogram::BucketOf(uint64_t v) {
  if (v < kSubCount) return static_cast<int>(v);
  // Octave k holds [2^k, 2^(k+1)), split into kSubCount linear sub-buckets
  // of width 2^(k - kSubBits).
  int k = 63 - std::countl_zero(v);
  uint64_t sub = (v >> (k - kSubBits)) - kSubCount;  // in [0, kSubCount)
  return static_cast<int>(kSubCount) +
         (k - kSubBits) * static_cast<int>(kSubCount) + static_cast<int>(sub);
}

uint64_t LatencyHistogram::BucketUpperBound(int i) {
  if (i < static_cast<int>(kSubCount)) return static_cast<uint64_t>(i);
  int rel = i - static_cast<int>(kSubCount);
  int k = kSubBits + rel / static_cast<int>(kSubCount);
  uint64_t sub = static_cast<uint64_t>(rel % static_cast<int>(kSubCount));
  // Bucket covers [(kSubCount+sub) << shift, (kSubCount+sub+1) << shift).
  int shift = k - kSubBits;
  return ((kSubCount + sub + 1) << shift) - 1;
}

void LatencyHistogram::Record(uint64_t v, uint64_t count) {
  if (count == 0) return;
  buckets_[BucketOf(v)] += count;
  count_ += count;
  sum_ += v * count;
  max_ = std::max(max_, v);
  min_ = std::min(min_, v);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
  min_ = std::min(min_, other.min_);
}

uint64_t LatencyHistogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

bool LatencyHistogram::operator==(const LatencyHistogram& other) const {
  if (count_ != other.count_ || sum_ != other.sum_ || max_ != other.max_ ||
      min_ != other.min_) {
    return false;
  }
  return std::equal(buckets_, buckets_ + kBuckets, other.buckets_);
}

std::string LatencyHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu p50=%llu p99=%llu max=%llu mean=%.1f",
                static_cast<unsigned long long>(count_),
                static_cast<unsigned long long>(ValueAtQuantile(0.50)),
                static_cast<unsigned long long>(ValueAtQuantile(0.99)),
                static_cast<unsigned long long>(max_), Mean());
  return buf;
}

}  // namespace rdfspark::obs
