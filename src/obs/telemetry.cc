#include "obs/telemetry.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <list>
#include <tuple>
#include <unordered_map>

#include "common/json.h"
#include "obs/prometheus.h"

namespace rdfspark::obs {

namespace {

constexpr const char* kMetricRequests = "requests";
constexpr const char* kMetricOk = "ok";
constexpr const char* kMetricAdmissionRejects = "admission_rejects";
constexpr const char* kMetricRaceRejects = "race_rejects";
constexpr const char* kMetricBudgetRejects = "budget_rejects";
constexpr const char* kMetricEnvelopeDrift = "envelope_drift";
constexpr const char* kMetricFailed = "failed";
constexpr const char* kMetricRows = "rows";
constexpr const char* kMetricTasks = "tasks";
constexpr const char* kMetricShuffleBytes = "shuffle_bytes";
constexpr const char* kMetricJoinComparisons = "join_comparisons";
constexpr const char* kMetricAudited = "audited";
constexpr const char* kMetricLatencyNs = "latency_ns";
constexpr const char* kMetricCacheHits = "cache_hits";
constexpr const char* kMetricCacheMisses = "cache_misses";
constexpr const char* kMetricCacheBypass = "cache_bypass";

const char* OutcomeMetric(RequestRecord::Outcome outcome) {
  switch (outcome) {
    case RequestRecord::Outcome::kOk:
      return kMetricOk;
    case RequestRecord::Outcome::kRejected:
      return kMetricAdmissionRejects;
    case RequestRecord::Outcome::kRaceRejected:
      return kMetricRaceRejects;
    case RequestRecord::Outcome::kBudgetRejected:
      return kMetricBudgetRejects;
    case RequestRecord::Outcome::kFailed:
      return kMetricFailed;
  }
  return "?";
}

std::string ScopeLabel(const SeriesId& id) {
  if (id.scope == ScopeKind::kTotal) return "total";
  return std::string(ScopeKindName(id.scope)) + "/" + id.scope_name;
}

std::string FormatMs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(ns) / 1e6);
  return buf;
}

std::string FormatRate(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

TelemetrySink::TelemetrySink(TelemetryOptions options)
    : options_(options), registry_(options.window) {}

void TelemetrySink::Ingest(RequestRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& tenant = tenants_[record.tenant];
  if (record.tenant_seq != tenant.next_seq) {
    tenant.pending.emplace(record.tenant_seq, std::move(record));
    return;
  }
  Apply(tenant, std::move(record));
  // Drain any buffered successors now unblocked.
  auto it = tenant.pending.begin();
  while (it != tenant.pending.end() && it->first == tenant.next_seq) {
    RequestRecord next = std::move(it->second);
    it = tenant.pending.erase(it);
    Apply(tenant, std::move(next));
  }
}

void TelemetrySink::Apply(TenantState& tenant, RequestRecord rec) {
  const uint64_t start_ns = tenant.clock_ns;
  const uint64_t duration_ns = rec.busy_ns + options_.request_overhead_ns;
  const uint64_t end_ns = start_ns + duration_ns;
  tenant.clock_ns = end_ns;
  tenant.next_seq = rec.tenant_seq + 1;

  const bool ok = rec.outcome == RequestRecord::Outcome::kOk;

  // ---- Structured events ----
  Event start;
  start.t_ns = start_ns;
  start.scope = rec.tenant;
  start.seq = rec.tenant_seq;
  start.kind = EventKind::kRequestStart;
  start.AddField("variant", rec.variant);
  events_.Add(std::move(start));

  Event finish;
  finish.t_ns = end_ns;
  finish.scope = rec.tenant;
  finish.seq = rec.tenant_seq;
  switch (rec.outcome) {
    case RequestRecord::Outcome::kOk:
      finish.kind = EventKind::kRequestFinish;
      finish.AddField("rows", rec.rows);
      break;
    case RequestRecord::Outcome::kRejected:
      finish.kind = EventKind::kAdmissionReject;
      finish.AddField("reason", rec.detail);
      break;
    case RequestRecord::Outcome::kRaceRejected:
      finish.kind = EventKind::kRaceGateReject;
      finish.AddField("reason", rec.detail);
      break;
    case RequestRecord::Outcome::kBudgetRejected:
      finish.kind = EventKind::kBudgetReject;
      finish.AddField("reason", rec.detail);
      finish.AddField("envelope_bytes", rec.envelope_bytes);
      break;
    case RequestRecord::Outcome::kFailed:
      finish.kind = EventKind::kRequestFinish;
      finish.AddField("error", rec.detail);
      break;
  }
  finish.AddField("sim_latency_ns", duration_ns);
  finish.AddField("variant", rec.variant);
  events_.Add(std::move(finish));

  // ---- Windowed series + cumulative totals, per scope ----
  std::vector<SeriesId> scopes;
  scopes.push_back({ScopeKind::kTotal, "", ""});
  scopes.push_back({ScopeKind::kTenant, rec.tenant, ""});
  if (!rec.variant.empty()) {
    scopes.push_back({ScopeKind::kVariant, rec.variant, ""});
  }
  auto count = [&](const char* metric, int64_t delta) {
    if (delta == 0) return;
    for (SeriesId id : scopes) {
      id.metric = metric;
      registry_.Add(id, end_ns, delta);
      total_counters_[id] += delta;
    }
  };
  count(kMetricRequests, 1);
  count(OutcomeMetric(rec.outcome), 1);
  count(kMetricRows, static_cast<int64_t>(rec.rows));
  count(kMetricTasks, static_cast<int64_t>(rec.tasks));
  count(kMetricShuffleBytes, static_cast<int64_t>(rec.shuffle_bytes));
  count(kMetricJoinComparisons, static_cast<int64_t>(rec.join_comparisons));
  if (ok) {
    for (SeriesId id : scopes) {
      id.metric = kMetricLatencyNs;
      registry_.Observe(id, end_ns, duration_ns);
      total_histograms_[id].Record(duration_ns);
    }
  }

  // ---- Slow-query audit ----
  if (rec.audited) {
    count(kMetricAudited, 1);
    AuditEntry entry;
    entry.t_ns = end_ns;
    entry.tenant = rec.tenant;
    entry.seq = rec.tenant_seq;
    entry.variant = rec.variant;
    entry.query = rec.query;
    entry.span_id = "serve " + rec.tenant + "#" +
                    std::to_string(rec.tenant_seq) + " " + rec.variant;
    entry.sim_latency_ns = duration_ns;
    entry.latency_trigger = rec.audit_latency_trigger;
    entry.error_trigger = rec.audit_error_trigger;
    entry.max_est_error = rec.max_est_error;
    entry.profile = rec.audit_profile;
    entry.patterns = rec.pattern_actuals;
    for (const PatternActual& p : entry.patterns) stats_.Observe(p);
    audit_.Add(std::move(entry));

    Event captured;
    captured.t_ns = end_ns;
    captured.scope = rec.tenant;
    captured.seq = rec.tenant_seq;
    captured.kind = EventKind::kAuditCapture;
    std::string trigger;
    if (rec.audit_latency_trigger) trigger = "latency";
    if (rec.audit_error_trigger) {
      trigger += trigger.empty() ? "est_error" : "+est_error";
    }
    captured.AddField("trigger", trigger);
    captured.AddField("sim_latency_ns", duration_ns);
    events_.Add(std::move(captured));
  }

  // ---- Envelope-vs-actual calibration (Tier D drift, serving side) ----
  // Both sides present only when the request executed a statically bounded
  // plan AND the audit's profiled re-execution measured its actual bytes.
  if (rec.envelope_bytes > 0 && rec.observed_bytes > 0) {
    const bool under = rec.observed_bytes > rec.envelope_bytes;
    const bool over =
        static_cast<double>(rec.envelope_bytes) >
        options_.envelope_drift_bound * static_cast<double>(rec.observed_bytes);
    if (under || over) {
      count(kMetricEnvelopeDrift, 1);
      Event drift;
      drift.t_ns = end_ns;
      drift.scope = rec.tenant;
      drift.seq = rec.tenant_seq;
      drift.kind = EventKind::kEnvelopeDrift;
      drift.AddField("direction", under ? "under" : "over");
      drift.AddField("envelope_bytes", rec.envelope_bytes);
      drift.AddField("observed_bytes", rec.observed_bytes);
      drift.AddField("variant", rec.variant);
      events_.Add(std::move(drift));
    }
  }

  // ---- Retain for logical cache replay ----
  Applied applied;
  applied.end_ns = end_ns;
  applied.tenant = rec.tenant;
  applied.seq = rec.tenant_seq;
  applied.cache_key = std::move(rec.cache_key);
  applied.epoch = rec.epoch;
  applied.bypass = rec.cache_bypass;
  applied.ok = ok;
  applied_.push_back(std::move(applied));
}

void TelemetrySink::RecordDatasetSwap(uint64_t epoch, uint64_t triples) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t t = 0;
  for (const auto& [name, tenant] : tenants_) {
    t = std::max(t, tenant.clock_ns);
  }
  Event swap;
  swap.t_ns = t;
  swap.scope = "server";
  swap.kind = EventKind::kDatasetSwap;
  swap.AddField("epoch", epoch);
  swap.AddField("triples", triples);
  events_.Add(std::move(swap));

  Applied marker;
  marker.end_ns = t;
  marker.tenant = "server";
  marker.epoch = epoch;
  marker.is_swap = true;
  applied_.push_back(std::move(marker));
}

AuditDecision TelemetrySink::DecideAudit(const std::string& tenant,
                                         uint64_t sim_latency_ns,
                                         double root_est_error) const {
  AuditDecision d;
  d.latency = sim_latency_ns >= options_.audit.LatencyThresholdFor(tenant);
  d.est_error = root_est_error >= options_.audit.est_error_bound;
  return d;
}

size_t TelemetrySink::unapplied() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [name, tenant] : tenants_) n += tenant.pending.size();
  return n;
}

TelemetrySink::CacheReplay TelemetrySink::ReplayCache() const {
  CacheReplay replay;
  replay.windows = WindowedRegistry(options_.window);

  // Canonical replay order: a pure function of the applied-record set.
  std::vector<const Applied*> order;
  order.reserve(applied_.size());
  for (const Applied& a : applied_) order.push_back(&a);
  std::sort(order.begin(), order.end(), [](const Applied* a, const Applied* b) {
    return std::tie(a->end_ns, a->is_swap, a->tenant, a->seq) <
           std::tie(b->end_ns, b->is_swap, b->tenant, b->seq);
  });

  // Logical LRU keyed by (epoch, cache key), same capacity as the physical
  // plan cache. list front = most recent.
  using Key = std::pair<uint64_t, std::string>;
  std::list<Key> lru;
  std::map<Key, std::list<Key>::iterator> index;

  auto observe = [&](const SeriesId& base, uint64_t t, const char* metric) {
    SeriesId id = base;
    id.metric = metric;
    replay.windows.Add(id, t, 1);
  };

  for (const Applied* a : order) {
    if (a->is_swap) {
      // The physical cache drops every entry at a hot swap.
      Event ev;
      ev.t_ns = a->end_ns;
      ev.scope = "server";
      ev.kind = EventKind::kCacheInvalidate;
      ev.AddField("entries", static_cast<uint64_t>(lru.size()));
      ev.AddField("epoch", a->epoch);
      replay.events.push_back(std::move(ev));
      replay.invalidations += lru.size();
      lru.clear();
      index.clear();
      continue;
    }
    if (!a->ok) continue;
    SeriesId total{ScopeKind::kTotal, "", ""};
    SeriesId tenant{ScopeKind::kTenant, a->tenant, ""};
    if (a->bypass) {
      // Bypasses include single-use-plan engines whose requests never
      // form a cache key; the key is irrelevant to the count.
      observe(total, a->end_ns, kMetricCacheBypass);
      observe(tenant, a->end_ns, kMetricCacheBypass);
      ++replay.bypasses;
      continue;
    }
    if (a->cache_key.empty()) continue;
    Key key{a->epoch, a->cache_key};
    auto it = index.find(key);
    if (it != index.end()) {
      lru.splice(lru.begin(), lru, it->second);
      observe(total, a->end_ns, kMetricCacheHits);
      observe(tenant, a->end_ns, kMetricCacheHits);
      ++replay.hits;
      Event ev;
      ev.t_ns = a->end_ns;
      ev.scope = a->tenant;
      ev.seq = a->seq;
      ev.kind = EventKind::kCacheHit;
      replay.events.push_back(std::move(ev));
      continue;
    }
    observe(total, a->end_ns, kMetricCacheMisses);
    observe(tenant, a->end_ns, kMetricCacheMisses);
    ++replay.misses;
    Event fill;
    fill.t_ns = a->end_ns;
    fill.scope = a->tenant;
    fill.seq = a->seq;
    fill.kind = EventKind::kCacheFill;
    fill.AddField("epoch", a->epoch);
    replay.events.push_back(std::move(fill));
    lru.push_front(key);
    index[key] = lru.begin();
    if (options_.logical_cache_capacity > 0 &&
        lru.size() > options_.logical_cache_capacity) {
      Key victim = lru.back();
      lru.pop_back();
      index.erase(victim);
      ++replay.evictions;
      Event ev;
      ev.t_ns = a->end_ns;
      ev.scope = a->tenant;
      ev.seq = a->seq;
      ev.kind = EventKind::kCacheEvict;
      ev.AddField("epoch", victim.first);
      replay.events.push_back(std::move(ev));
    }
  }
  return replay;
}

namespace {

/// One window's union of base-registry and cache-replay series.
struct MergedWindow {
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  std::map<SeriesId, const WindowedRegistry::Cell*> series;
};

std::vector<MergedWindow> MergeWindows(
    const std::vector<WindowedRegistry::WindowSnapshot>& base,
    const std::vector<WindowedRegistry::WindowSnapshot>& cache) {
  std::map<uint64_t, MergedWindow> merged;
  auto fold = [&](const std::vector<WindowedRegistry::WindowSnapshot>& src) {
    for (const auto& w : src) {
      MergedWindow& m = merged[w.start_ns];
      m.start_ns = w.start_ns;
      m.end_ns = w.end_ns;
      for (const auto& [id, cell] : w.series) m.series[id] = cell;
    }
  };
  fold(base);
  fold(cache);
  std::vector<MergedWindow> out;
  out.reserve(merged.size());
  for (auto& [start, w] : merged) out.push_back(std::move(w));
  return out;
}

int64_t CounterOf(const MergedWindow& w, const SeriesId& scope,
                  const char* metric) {
  SeriesId id = scope;
  id.metric = metric;
  auto it = w.series.find(id);
  return it == w.series.end() ? 0 : it->second->counter;
}

const LatencyHistogram* HistOf(const MergedWindow& w, const SeriesId& scope,
                               const char* metric) {
  SeriesId id = scope;
  id.metric = metric;
  auto it = w.series.find(id);
  return it == w.series.end() || it->second->hist == nullptr
             ? nullptr
             : it->second->hist.get();
}

}  // namespace

std::string TelemetrySink::WindowsTextLocked(const CacheReplay& cache) const {
  std::vector<MergedWindow> windows =
      MergeWindows(registry_.Snapshot(), cache.windows.Snapshot());
  std::string out;
  char line[256];
  for (const MergedWindow& w : windows) {
    out += "window [" + FormatMs(w.start_ns) + "ms, " + FormatMs(w.end_ns) +
           "ms)\n";
    std::snprintf(line, sizeof(line),
                  "  %-22s %8s %8s %9s %9s %6s %7s %12s\n", "scope", "reqs",
                  "qps", "p50_ms", "p99_ms", "hit%", "rejects", "shuffle_B");
    out += line;
    // Distinct scopes present in this window, in SeriesId order.
    std::vector<SeriesId> scopes;
    for (const auto& [id, cell] : w.series) {
      SeriesId scope = id;
      scope.metric.clear();
      if (scopes.empty() || !(scopes.back() == scope)) {
        scopes.push_back(scope);
      }
    }
    double width_s =
        static_cast<double>(options_.window.width_ns) / 1e9;
    for (const SeriesId& scope : scopes) {
      int64_t reqs = CounterOf(w, scope, kMetricRequests);
      int64_t rejects = CounterOf(w, scope, kMetricAdmissionRejects) +
                        CounterOf(w, scope, kMetricRaceRejects) +
                        CounterOf(w, scope, kMetricBudgetRejects);
      int64_t hits = CounterOf(w, scope, kMetricCacheHits);
      int64_t misses = CounterOf(w, scope, kMetricCacheMisses);
      const LatencyHistogram* hist = HistOf(w, scope, kMetricLatencyNs);
      std::string p50 = hist == nullptr ? "-" : FormatMs(hist->ValueAtQuantile(0.50));
      std::string p99 = hist == nullptr ? "-" : FormatMs(hist->ValueAtQuantile(0.99));
      std::string hit_rate =
          hits + misses == 0
              ? "-"
              : FormatRate(100.0 * static_cast<double>(hits) /
                           static_cast<double>(hits + misses));
      std::snprintf(line, sizeof(line),
                    "  %-22s %8lld %8s %9s %9s %6s %7lld %12lld\n",
                    ScopeLabel(scope).c_str(), static_cast<long long>(reqs),
                    FormatRate(static_cast<double>(reqs) / width_s).c_str(),
                    p50.c_str(), p99.c_str(), hit_rate.c_str(),
                    static_cast<long long>(rejects),
                    static_cast<long long>(
                        CounterOf(w, scope, kMetricShuffleBytes)));
      out += line;
    }
  }
  if (windows.empty()) out += "(no windows)\n";
  return out;
}

std::string TelemetrySink::TelemetryJsonLocked(const CacheReplay& cache) const {
  std::vector<MergedWindow> windows =
      MergeWindows(registry_.Snapshot(), cache.windows.Snapshot());
  std::string out = "{\"window\":{\"width_ns\":" +
                    std::to_string(options_.window.width_ns) +
                    ",\"stride_ns\":" + std::to_string(options_.window.stride_ns) +
                    "},\"request_overhead_ns\":" +
                    std::to_string(options_.request_overhead_ns) +
                    ",\"cache\":{\"hits\":" + std::to_string(cache.hits) +
                    ",\"misses\":" + std::to_string(cache.misses) +
                    ",\"bypasses\":" + std::to_string(cache.bypasses) +
                    ",\"evictions\":" + std::to_string(cache.evictions) +
                    ",\"invalidations\":" + std::to_string(cache.invalidations) +
                    "},\"audit_entries\":" + std::to_string(audit_.size()) +
                    ",\"events_dropped\":" + std::to_string(events_.dropped()) +
                    ",\"windows\":[\n";
  bool first_window = true;
  for (const MergedWindow& w : windows) {
    if (!first_window) out += ",\n";
    first_window = false;
    out += "{\"start_ns\":" + std::to_string(w.start_ns) +
           ",\"end_ns\":" + std::to_string(w.end_ns) + ",\"series\":[";
    bool first_series = true;
    for (const auto& [id, cell] : w.series) {
      if (!first_series) out += ",";
      first_series = false;
      out += "{\"scope\":\"" + std::string(ScopeKindName(id.scope)) +
             "\",\"name\":\"" + JsonEscape(id.scope_name) +
             "\",\"metric\":\"" + JsonEscape(id.metric) + "\",";
      switch (cell->kind) {
        case SeriesKind::kCounter:
          out += "\"value\":" + std::to_string(cell->counter);
          break;
        case SeriesKind::kGauge:
          out += "\"value\":" + std::to_string(cell->gauge);
          break;
        case SeriesKind::kHistogram:
          out += "\"count\":" + std::to_string(cell->hist->count()) +
                 ",\"sum\":" + std::to_string(cell->hist->sum()) +
                 ",\"p50\":" + std::to_string(cell->hist->ValueAtQuantile(0.50)) +
                 ",\"p99\":" + std::to_string(cell->hist->ValueAtQuantile(0.99)) +
                 ",\"max\":" + std::to_string(cell->hist->max_value());
          break;
      }
      out += "}";
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

std::string TelemetrySink::PrometheusTextLocked(const CacheReplay& cache) const {
  PrometheusBuilder b;
  auto labels = [](const SeriesId& id) {
    PrometheusLabels l;
    l.emplace_back("level", ScopeKindName(id.scope));
    l.emplace_back("name", id.scope == ScopeKind::kTotal ? "all"
                                                         : id.scope_name);
    return l;
  };

  // Counters grouped per metric family (SeriesId sorts by scope first, so
  // regroup by metric name).
  std::map<std::string, std::vector<std::pair<SeriesId, int64_t>>> families;
  for (const auto& [id, value] : total_counters_) {
    families[id.metric].emplace_back(id, value);
  }
  for (const auto& [metric, samples] : families) {
    std::string name = "rdfspark_serve_" + metric + "_total";
    b.Family(name, "counter", "serving telemetry counter " + metric);
    for (const auto& [id, value] : samples) {
      b.Add(name, labels(id), static_cast<uint64_t>(value < 0 ? 0 : value));
    }
  }

  {
    std::string name = "rdfspark_serve_cache_ops_total";
    b.Family(name, "counter", "logical plan-cache operations (replayed)");
    b.Add(name, {{"op", "hit"}}, cache.hits);
    b.Add(name, {{"op", "miss"}}, cache.misses);
    b.Add(name, {{"op", "bypass"}}, cache.bypasses);
    b.Add(name, {{"op", "evict"}}, cache.evictions);
    b.Add(name, {{"op", "invalidate"}}, cache.invalidations);
  }

  {
    std::string name = "rdfspark_serve_latency_ns";
    b.Family(name, "histogram", "simulated request latency (ok requests)");
    for (const auto& [id, hist] : total_histograms_) {
      PrometheusLabels base = labels(id);
      uint64_t cumulative = 0;
      for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
        if (hist.bucket(i) == 0) continue;
        cumulative += hist.bucket(i);
        PrometheusLabels l = base;
        l.emplace_back(
            "le", std::to_string(LatencyHistogram::BucketUpperBound(i)));
        b.Add(name + "_bucket", l, cumulative);
      }
      PrometheusLabels inf = base;
      inf.emplace_back("le", "+Inf");
      b.Add(name + "_bucket", inf, hist.count());
      b.Add(name + "_sum", base, hist.sum());
      b.Add(name + "_count", base, hist.count());
    }
  }

  b.Family("rdfspark_serve_windows", "gauge", "non-empty telemetry windows");
  b.Add("rdfspark_serve_windows", {},
        static_cast<uint64_t>(registry_.window_count()));
  b.Family("rdfspark_serve_audit_entries", "gauge",
           "captured slow-query audit entries");
  b.Add("rdfspark_serve_audit_entries", {},
        static_cast<uint64_t>(audit_.size()));
  b.Family("rdfspark_serve_events_dropped_total", "counter",
           "events evicted from the bounded event log");
  b.Add("rdfspark_serve_events_dropped_total", {}, events_.dropped());
  return b.Text();
}

std::string TelemetrySink::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  return PrometheusTextLocked(ReplayCache());
}

std::string TelemetrySink::WindowsText() const {
  std::lock_guard<std::mutex> lock(mu_);
  return WindowsTextLocked(ReplayCache());
}

std::string TelemetrySink::EventsJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.ToJson(ReplayCache().events);
}

std::string TelemetrySink::AuditJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  return audit_.ToJson();
}

std::string TelemetrySink::StatsStoreJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.ToJson();
}

std::string TelemetrySink::TelemetryJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  return TelemetryJsonLocked(ReplayCache());
}

size_t TelemetrySink::window_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return registry_.window_count();
}

size_t TelemetrySink::audit_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return audit_.size();
}

Status TelemetrySink::WriteArtifacts(const std::string& dir) const {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::InvalidArgument("cannot create telemetry dir: " + dir);
  }
  auto write = [&](const std::string& name,
                   const std::string& content) -> Status {
    std::ofstream out(dir + "/" + name);
    if (!out) {
      return Status::InvalidArgument("cannot write " + dir + "/" + name);
    }
    out << content;
    return Status::OK();
  };
  std::lock_guard<std::mutex> lock(mu_);
  CacheReplay cache = ReplayCache();
  RDFSPARK_RETURN_NOT_OK(write("metrics.prom", PrometheusTextLocked(cache)));
  RDFSPARK_RETURN_NOT_OK(write("windows.txt", WindowsTextLocked(cache)));
  RDFSPARK_RETURN_NOT_OK(write("events.json", events_.ToJson(cache.events)));
  RDFSPARK_RETURN_NOT_OK(write("audit.json", audit_.ToJson()));
  RDFSPARK_RETURN_NOT_OK(write("stats_store.json", stats_.ToJson()));
  RDFSPARK_RETURN_NOT_OK(write("telemetry.json", TelemetryJsonLocked(cache)));
  return Status::OK();
}

}  // namespace rdfspark::obs
