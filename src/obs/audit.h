#ifndef RDFSPARK_OBS_AUDIT_H_
#define RDFSPARK_OBS_AUDIT_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rdfspark::obs {

/// When the serving layer captures a slow-query audit entry.
struct AuditOptions {
  /// Simulated-latency threshold: requests at or above it are audited.
  uint64_t latency_threshold_ns = 50'000'000;  // 50 simulated ms
  /// Per-tenant overrides of latency_threshold_ns.
  std::map<std::string, uint64_t> tenant_latency_threshold_ns;
  /// Requests whose max per-operator |actual/estimate| error factor
  /// reaches this bound are audited regardless of latency.
  double est_error_bound = 16.0;
  /// Retained audit entries (canonically earliest kept; rest counted).
  size_t max_entries = 64;

  uint64_t LatencyThresholdFor(const std::string& tenant) const {
    auto it = tenant_latency_threshold_ns.find(tenant);
    return it == tenant_latency_threshold_ns.end() ? latency_threshold_ns
                                                   : it->second;
  }
};

/// Estimated vs. observed cardinality of one leaf triple-pattern scan,
/// harvested from an EXPLAIN ANALYZE run. `pattern` is the normalized
/// triple pattern text; `predicate` is its predicate IRI (or "?" when the
/// predicate is a variable).
struct PatternActual {
  std::string pattern;
  std::string predicate;
  uint64_t est_rows = 0;
  uint64_t actual_rows = 0;
};

/// One captured slow-query profile.
struct AuditEntry {
  uint64_t t_ns = 0;  ///< Simulated end time of the audited request.
  std::string tenant;
  uint64_t seq = 0;  ///< Per-tenant request sequence.
  std::string variant;
  std::string query;
  std::string span_id;  ///< Trace span name of the serving job span.
  uint64_t sim_latency_ns = 0;
  bool latency_trigger = false;
  bool error_trigger = false;
  double max_est_error = 0.0;  ///< Max per-operator error factor observed.
  std::string profile;         ///< Full EXPLAIN ANALYZE text.
  std::vector<PatternActual> patterns;

  auto Key() const { return std::tie(t_ns, tenant, seq); }
  bool operator<(const AuditEntry& o) const { return Key() < o.Key(); }

  std::string ToJson() const;
};

/// Bounded store of audit entries, canonically ordered by
/// (t_ns, tenant, seq). Over capacity the canonically *latest* entry is
/// dropped (and counted): the retained set is "the first max_entries
/// audited requests on the simulated timeline", a deterministic function
/// of the entry set.
class SlowQueryAudit {
 public:
  explicit SlowQueryAudit(AuditOptions options = AuditOptions())
      : options_(std::move(options)) {}

  const AuditOptions& options() const { return options_; }

  void Add(AuditEntry entry);

  size_t size() const { return entries_.size(); }
  uint64_t dropped() const { return dropped_; }
  std::vector<AuditEntry> Sorted() const;

  /// {"dropped":N,"entries":[...]}, entries in canonical order.
  std::string ToJson() const;

 private:
  AuditOptions options_;
  std::multiset<AuditEntry> entries_;
  uint64_t dropped_ = 0;
};

/// Persistent per-(pattern, predicate) cardinality actuals, aggregated
/// across audited queries. The JSON file it round-trips through is meant
/// for estimator re-seeding: a planner can look up the mean observed
/// cardinality of a pattern before falling back to static heuristics.
class StatsStore {
 public:
  struct Stats {
    uint64_t count = 0;
    uint64_t total_rows = 0;
    uint64_t min_rows = ~0ull;
    uint64_t max_rows = 0;
    uint64_t est_rows = 0;  ///< Latest planner estimate (max over obs).

    double MeanRows() const {
      return count == 0 ? 0.0
                        : static_cast<double>(total_rows) /
                              static_cast<double>(count);
    }
  };

  void Observe(const PatternActual& actual);

  /// Mean observed cardinality, or negative when the pattern is unseen.
  double LookupMeanRows(const std::string& pattern) const;

  size_t size() const { return stats_.size(); }

  /// {"patterns":[{"pattern":..,"predicate":..,"count":..,...}]} sorted by
  /// (pattern, predicate).
  std::string ToJson() const;

  /// Parses a file previously produced by ToJson.
  static Result<StatsStore> Parse(std::string_view json);

 private:
  std::map<std::pair<std::string, std::string>, Stats> stats_;
};

}  // namespace rdfspark::obs

#endif  // RDFSPARK_OBS_AUDIT_H_
