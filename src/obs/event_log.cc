#include "obs/event_log.h"

#include <algorithm>
#include <tuple>

#include "common/json.h"

namespace rdfspark::obs {

const char* EventKindName(EventKind k) {
  switch (k) {
    case EventKind::kRequestStart:
      return "request_start";
    case EventKind::kRequestFinish:
      return "request_finish";
    case EventKind::kAdmissionReject:
      return "admission_reject";
    case EventKind::kRaceGateReject:
      return "race_gate_reject";
    case EventKind::kBudgetReject:
      return "budget_reject";
    case EventKind::kCacheFill:
      return "cache_fill";
    case EventKind::kCacheHit:
      return "cache_hit";
    case EventKind::kCacheEvict:
      return "cache_evict";
    case EventKind::kCacheInvalidate:
      return "cache_invalidate";
    case EventKind::kDatasetSwap:
      return "dataset_swap";
    case EventKind::kAuditCapture:
      return "audit_capture";
    case EventKind::kEnvelopeDrift:
      return "envelope_drift";
  }
  return "?";
}

void Event::AddField(std::string name, std::string value) {
  auto entry = std::make_pair(std::move(name), std::move(value));
  auto it = std::lower_bound(str_fields.begin(), str_fields.end(), entry);
  str_fields.insert(it, std::move(entry));
}

void Event::AddField(std::string name, uint64_t value) {
  auto entry = std::make_pair(std::move(name), value);
  auto it = std::lower_bound(num_fields.begin(), num_fields.end(), entry);
  num_fields.insert(it, std::move(entry));
}

bool Event::operator<(const Event& o) const {
  return std::tie(t_ns, scope, seq, kind, str_fields, num_fields) <
         std::tie(o.t_ns, o.scope, o.seq, o.kind, o.str_fields, o.num_fields);
}

std::string Event::ToJson() const {
  std::string out = "{\"t_ns\":" + std::to_string(t_ns) + ",\"kind\":\"" +
                    EventKindName(kind) + "\",\"scope\":\"" +
                    JsonEscape(scope) + "\",\"seq\":" + std::to_string(seq);
  // Fields interleave by name so the member order is canonical regardless
  // of the string/number split.
  size_t si = 0;
  size_t ni = 0;
  while (si < str_fields.size() || ni < num_fields.size()) {
    bool take_str =
        ni == num_fields.size() ||
        (si < str_fields.size() && str_fields[si].first <= num_fields[ni].first);
    if (take_str) {
      out += ",\"" + JsonEscape(str_fields[si].first) + "\":\"" +
             JsonEscape(str_fields[si].second) + "\"";
      ++si;
    } else {
      out += ",\"" + JsonEscape(num_fields[ni].first) +
             "\":" + std::to_string(num_fields[ni].second);
      ++ni;
    }
  }
  out += "}";
  return out;
}

void EventLog::Add(Event event) {
  events_.insert(std::move(event));
  while (events_.size() > capacity_) {
    events_.erase(events_.begin());
    ++dropped_;
  }
}

std::vector<Event> EventLog::Sorted() const {
  return std::vector<Event>(events_.begin(), events_.end());
}

std::string EventLog::ToJson(const std::vector<Event>& extra) const {
  std::vector<Event> all = Sorted();
  all.insert(all.end(), extra.begin(), extra.end());
  std::sort(all.begin(), all.end());
  std::string out =
      "{\"dropped\":" + std::to_string(dropped_) + ",\"events\":[\n";
  for (size_t i = 0; i < all.size(); ++i) {
    if (i > 0) out += ",\n";
    out += all[i].ToJson();
  }
  out += "\n]}\n";
  return out;
}

bool EventLog::Covers(EventKind k) const {
  return std::any_of(events_.begin(), events_.end(),
                     [k](const Event& e) { return e.kind == k; });
}

}  // namespace rdfspark::obs
