#include "obs/audit.h"

#include <algorithm>
#include <cstdio>

#include "common/json.h"

namespace rdfspark::obs {

namespace {

std::string FormatError(double err) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", err);
  return buf;
}

}  // namespace

std::string AuditEntry::ToJson() const {
  std::string trigger;
  if (latency_trigger) trigger = "latency";
  if (error_trigger) trigger += trigger.empty() ? "est_error" : "+est_error";
  std::string out = "{\"t_ns\":" + std::to_string(t_ns) + ",\"tenant\":\"" +
                    JsonEscape(tenant) + "\",\"seq\":" + std::to_string(seq) +
                    ",\"variant\":\"" + JsonEscape(variant) +
                    "\",\"span_id\":\"" + JsonEscape(span_id) +
                    "\",\"sim_latency_ns\":" + std::to_string(sim_latency_ns) +
                    ",\"trigger\":\"" + trigger + "\",\"max_est_error\":" +
                    FormatError(max_est_error) + ",\"query\":\"" +
                    JsonEscape(query) + "\",\"patterns\":[";
  for (size_t i = 0; i < patterns.size(); ++i) {
    const PatternActual& p = patterns[i];
    if (i > 0) out += ",";
    out += "{\"pattern\":\"" + JsonEscape(p.pattern) + "\",\"predicate\":\"" +
           JsonEscape(p.predicate) +
           "\",\"est_rows\":" + std::to_string(p.est_rows) +
           ",\"actual_rows\":" + std::to_string(p.actual_rows) + "}";
  }
  out += "],\"profile\":\"" + JsonEscape(profile) + "\"}";
  return out;
}

void SlowQueryAudit::Add(AuditEntry entry) {
  entries_.insert(std::move(entry));
  while (entries_.size() > options_.max_entries) {
    entries_.erase(std::prev(entries_.end()));
    ++dropped_;
  }
}

std::vector<AuditEntry> SlowQueryAudit::Sorted() const {
  return std::vector<AuditEntry>(entries_.begin(), entries_.end());
}

std::string SlowQueryAudit::ToJson() const {
  std::string out =
      "{\"dropped\":" + std::to_string(dropped_) + ",\"entries\":[\n";
  bool first = true;
  for (const AuditEntry& e : entries_) {
    if (!first) out += ",\n";
    first = false;
    out += e.ToJson();
  }
  out += "\n]}\n";
  return out;
}

void StatsStore::Observe(const PatternActual& actual) {
  Stats& s = stats_[{actual.pattern, actual.predicate}];
  s.count += 1;
  s.total_rows += actual.actual_rows;
  s.min_rows = std::min(s.min_rows, actual.actual_rows);
  s.max_rows = std::max(s.max_rows, actual.actual_rows);
  s.est_rows = std::max(s.est_rows, actual.est_rows);
}

double StatsStore::LookupMeanRows(const std::string& pattern) const {
  for (const auto& [key, s] : stats_) {
    if (key.first == pattern) return s.MeanRows();
  }
  return -1.0;
}

std::string StatsStore::ToJson() const {
  std::string out = "{\"patterns\":[\n";
  bool first = true;
  for (const auto& [key, s] : stats_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"pattern\":\"" + JsonEscape(key.first) + "\",\"predicate\":\"" +
           JsonEscape(key.second) + "\",\"count\":" + std::to_string(s.count) +
           ",\"total_rows\":" + std::to_string(s.total_rows) +
           ",\"min_rows\":" + std::to_string(s.count == 0 ? 0 : s.min_rows) +
           ",\"max_rows\":" + std::to_string(s.max_rows) +
           ",\"est_rows\":" + std::to_string(s.est_rows) + "}";
  }
  out += "\n]}\n";
  return out;
}

Result<StatsStore> StatsStore::Parse(std::string_view json) {
  RDFSPARK_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  StatsStore store;
  const JsonValue* patterns = root.Find("patterns");
  if (patterns == nullptr || patterns->kind != JsonValue::Kind::kArray) {
    return Status::InvalidArgument("stats store: missing patterns array");
  }
  for (const JsonValue& item : patterns->items) {
    if (item.kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("stats store: pattern entry not object");
    }
    std::pair<std::string, std::string> key = {item.StringOr("pattern", ""),
                                               item.StringOr("predicate", "")};
    Stats s;
    s.count = static_cast<uint64_t>(item.NumberOr("count", 0));
    s.total_rows = static_cast<uint64_t>(item.NumberOr("total_rows", 0));
    s.min_rows = static_cast<uint64_t>(item.NumberOr("min_rows", 0));
    s.max_rows = static_cast<uint64_t>(item.NumberOr("max_rows", 0));
    s.est_rows = static_cast<uint64_t>(item.NumberOr("est_rows", 0));
    if (s.count == 0) s.min_rows = ~0ull;
    store.stats_[std::move(key)] = s;
  }
  return store;
}

}  // namespace rdfspark::obs
