#ifndef RDFSPARK_OBS_TIME_SERIES_H_
#define RDFSPARK_OBS_TIME_SERIES_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "obs/histogram.h"

namespace rdfspark::obs {

/// Window geometry over the simulated-ns timeline. stride == width is the
/// tumbling case (every instant belongs to exactly one window);
/// stride < width yields overlapping sliding windows where one
/// observation lands in ceil(width / stride) of them.
struct WindowSpec {
  uint64_t width_ns = 25'000'000;   // 25 simulated ms
  uint64_t stride_ns = 25'000'000;  // tumbling by default

  /// Start of the first (lowest) window containing `t`.
  uint64_t FirstWindowStart(uint64_t t) const;
  /// Number of windows containing any instant (ceil(width / stride)).
  uint64_t WindowsPerInstant() const;
};

/// What a series aggregates to within one window.
enum class SeriesKind : uint8_t {
  kCounter,    ///< Sum of signed deltas.
  kGauge,      ///< Maximum of observed values (max is the only
               ///< order-independent "last" under concurrent ingest).
  kHistogram,  ///< Mergeable LatencyHistogram of samples.
};

/// Scope a series is attributed to. Totals, per-tenant and per-engine-
/// variant series coexist in one registry and render as separate table
/// sections.
enum class ScopeKind : uint8_t { kTotal, kTenant, kVariant };

const char* ScopeKindName(ScopeKind k);

struct SeriesId {
  ScopeKind scope = ScopeKind::kTotal;
  std::string scope_name;  // empty for kTotal
  std::string metric;

  auto Tie() const { return std::tie(scope, scope_name, metric); }
  bool operator<(const SeriesId& o) const { return Tie() < o.Tie(); }
  bool operator==(const SeriesId& o) const { return Tie() == o.Tie(); }
};

/// Windowed time-series registry: counters, gauges and mergeable latency
/// histograms per (window, scope, metric). NOT internally synchronized —
/// the TelemetrySink owns one under its lock. Determinism contract: every
/// aggregation is commutative and associative (sums, maxima, bucket-wise
/// histogram merges), so a snapshot taken at a quiescent point depends
/// only on the multiset of observations, never on ingest order or thread
/// count.
class WindowedRegistry {
 public:
  explicit WindowedRegistry(WindowSpec spec = WindowSpec()) : spec_(spec) {}

  const WindowSpec& spec() const { return spec_; }

  /// Adds `delta` (possibly negative) to a counter in every window
  /// containing `t_ns`.
  void Add(const SeriesId& id, uint64_t t_ns, int64_t delta);

  /// Folds `v` into a max-gauge in every window containing `t_ns`.
  void SetMax(const SeriesId& id, uint64_t t_ns, uint64_t v);

  /// Records a histogram sample in every window containing `t_ns`.
  void Observe(const SeriesId& id, uint64_t t_ns, uint64_t v);

  struct Cell {
    SeriesKind kind = SeriesKind::kCounter;
    int64_t counter = 0;
    uint64_t gauge = 0;
    std::unique_ptr<LatencyHistogram> hist;  // kHistogram only
  };

  struct WindowSnapshot {
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;
    /// Sorted by SeriesId — deterministic iteration for every export.
    std::map<SeriesId, const Cell*> series;
  };

  /// All non-empty windows in ascending start order. Pointers stay valid
  /// until the next mutation.
  std::vector<WindowSnapshot> Snapshot() const;

  size_t window_count() const { return windows_.size(); }

 private:
  using Window = std::map<SeriesId, Cell>;

  /// Applies `fn` to the cell of `id` in every window containing `t_ns`.
  template <typename Fn>
  void ForEachWindow(const SeriesId& id, uint64_t t_ns, SeriesKind kind,
                     Fn&& fn);

  WindowSpec spec_;
  std::map<uint64_t, Window> windows_;  // keyed by window start
};

}  // namespace rdfspark::obs

#endif  // RDFSPARK_OBS_TIME_SERIES_H_
