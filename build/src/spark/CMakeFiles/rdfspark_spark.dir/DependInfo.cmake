
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spark/context.cc" "src/spark/CMakeFiles/rdfspark_spark.dir/context.cc.o" "gcc" "src/spark/CMakeFiles/rdfspark_spark.dir/context.cc.o.d"
  "/root/repo/src/spark/graphframes/graphframe.cc" "src/spark/CMakeFiles/rdfspark_spark.dir/graphframes/graphframe.cc.o" "gcc" "src/spark/CMakeFiles/rdfspark_spark.dir/graphframes/graphframe.cc.o.d"
  "/root/repo/src/spark/graphx/graph.cc" "src/spark/CMakeFiles/rdfspark_spark.dir/graphx/graph.cc.o" "gcc" "src/spark/CMakeFiles/rdfspark_spark.dir/graphx/graph.cc.o.d"
  "/root/repo/src/spark/metrics.cc" "src/spark/CMakeFiles/rdfspark_spark.dir/metrics.cc.o" "gcc" "src/spark/CMakeFiles/rdfspark_spark.dir/metrics.cc.o.d"
  "/root/repo/src/spark/sql/column.cc" "src/spark/CMakeFiles/rdfspark_spark.dir/sql/column.cc.o" "gcc" "src/spark/CMakeFiles/rdfspark_spark.dir/sql/column.cc.o.d"
  "/root/repo/src/spark/sql/dataframe.cc" "src/spark/CMakeFiles/rdfspark_spark.dir/sql/dataframe.cc.o" "gcc" "src/spark/CMakeFiles/rdfspark_spark.dir/sql/dataframe.cc.o.d"
  "/root/repo/src/spark/sql/expr.cc" "src/spark/CMakeFiles/rdfspark_spark.dir/sql/expr.cc.o" "gcc" "src/spark/CMakeFiles/rdfspark_spark.dir/sql/expr.cc.o.d"
  "/root/repo/src/spark/sql/logical_plan.cc" "src/spark/CMakeFiles/rdfspark_spark.dir/sql/logical_plan.cc.o" "gcc" "src/spark/CMakeFiles/rdfspark_spark.dir/sql/logical_plan.cc.o.d"
  "/root/repo/src/spark/sql/optimizer.cc" "src/spark/CMakeFiles/rdfspark_spark.dir/sql/optimizer.cc.o" "gcc" "src/spark/CMakeFiles/rdfspark_spark.dir/sql/optimizer.cc.o.d"
  "/root/repo/src/spark/sql/session.cc" "src/spark/CMakeFiles/rdfspark_spark.dir/sql/session.cc.o" "gcc" "src/spark/CMakeFiles/rdfspark_spark.dir/sql/session.cc.o.d"
  "/root/repo/src/spark/sql/sql_parser.cc" "src/spark/CMakeFiles/rdfspark_spark.dir/sql/sql_parser.cc.o" "gcc" "src/spark/CMakeFiles/rdfspark_spark.dir/sql/sql_parser.cc.o.d"
  "/root/repo/src/spark/sql/value.cc" "src/spark/CMakeFiles/rdfspark_spark.dir/sql/value.cc.o" "gcc" "src/spark/CMakeFiles/rdfspark_spark.dir/sql/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rdfspark_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
