# Empty compiler generated dependencies file for rdfspark_spark.
# This may be replaced when dependencies are built.
