file(REMOVE_RECURSE
  "librdfspark_spark.a"
)
