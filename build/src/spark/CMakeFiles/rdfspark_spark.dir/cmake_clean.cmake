file(REMOVE_RECURSE
  "CMakeFiles/rdfspark_spark.dir/context.cc.o"
  "CMakeFiles/rdfspark_spark.dir/context.cc.o.d"
  "CMakeFiles/rdfspark_spark.dir/graphframes/graphframe.cc.o"
  "CMakeFiles/rdfspark_spark.dir/graphframes/graphframe.cc.o.d"
  "CMakeFiles/rdfspark_spark.dir/graphx/graph.cc.o"
  "CMakeFiles/rdfspark_spark.dir/graphx/graph.cc.o.d"
  "CMakeFiles/rdfspark_spark.dir/metrics.cc.o"
  "CMakeFiles/rdfspark_spark.dir/metrics.cc.o.d"
  "CMakeFiles/rdfspark_spark.dir/sql/column.cc.o"
  "CMakeFiles/rdfspark_spark.dir/sql/column.cc.o.d"
  "CMakeFiles/rdfspark_spark.dir/sql/dataframe.cc.o"
  "CMakeFiles/rdfspark_spark.dir/sql/dataframe.cc.o.d"
  "CMakeFiles/rdfspark_spark.dir/sql/expr.cc.o"
  "CMakeFiles/rdfspark_spark.dir/sql/expr.cc.o.d"
  "CMakeFiles/rdfspark_spark.dir/sql/logical_plan.cc.o"
  "CMakeFiles/rdfspark_spark.dir/sql/logical_plan.cc.o.d"
  "CMakeFiles/rdfspark_spark.dir/sql/optimizer.cc.o"
  "CMakeFiles/rdfspark_spark.dir/sql/optimizer.cc.o.d"
  "CMakeFiles/rdfspark_spark.dir/sql/session.cc.o"
  "CMakeFiles/rdfspark_spark.dir/sql/session.cc.o.d"
  "CMakeFiles/rdfspark_spark.dir/sql/sql_parser.cc.o"
  "CMakeFiles/rdfspark_spark.dir/sql/sql_parser.cc.o.d"
  "CMakeFiles/rdfspark_spark.dir/sql/value.cc.o"
  "CMakeFiles/rdfspark_spark.dir/sql/value.cc.o.d"
  "librdfspark_spark.a"
  "librdfspark_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfspark_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
