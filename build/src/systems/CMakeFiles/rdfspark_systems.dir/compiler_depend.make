# Empty compiler generated dependencies file for rdfspark_systems.
# This may be replaced when dependencies are built.
