
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systems/common.cc" "src/systems/CMakeFiles/rdfspark_systems.dir/common.cc.o" "gcc" "src/systems/CMakeFiles/rdfspark_systems.dir/common.cc.o.d"
  "/root/repo/src/systems/engine.cc" "src/systems/CMakeFiles/rdfspark_systems.dir/engine.cc.o" "gcc" "src/systems/CMakeFiles/rdfspark_systems.dir/engine.cc.o.d"
  "/root/repo/src/systems/graphframes_engine.cc" "src/systems/CMakeFiles/rdfspark_systems.dir/graphframes_engine.cc.o" "gcc" "src/systems/CMakeFiles/rdfspark_systems.dir/graphframes_engine.cc.o.d"
  "/root/repo/src/systems/graphx_sm.cc" "src/systems/CMakeFiles/rdfspark_systems.dir/graphx_sm.cc.o" "gcc" "src/systems/CMakeFiles/rdfspark_systems.dir/graphx_sm.cc.o.d"
  "/root/repo/src/systems/haqwa.cc" "src/systems/CMakeFiles/rdfspark_systems.dir/haqwa.cc.o" "gcc" "src/systems/CMakeFiles/rdfspark_systems.dir/haqwa.cc.o.d"
  "/root/repo/src/systems/hybrid.cc" "src/systems/CMakeFiles/rdfspark_systems.dir/hybrid.cc.o" "gcc" "src/systems/CMakeFiles/rdfspark_systems.dir/hybrid.cc.o.d"
  "/root/repo/src/systems/s2rdf.cc" "src/systems/CMakeFiles/rdfspark_systems.dir/s2rdf.cc.o" "gcc" "src/systems/CMakeFiles/rdfspark_systems.dir/s2rdf.cc.o.d"
  "/root/repo/src/systems/s2x.cc" "src/systems/CMakeFiles/rdfspark_systems.dir/s2x.cc.o" "gcc" "src/systems/CMakeFiles/rdfspark_systems.dir/s2x.cc.o.d"
  "/root/repo/src/systems/semantic_partitioning.cc" "src/systems/CMakeFiles/rdfspark_systems.dir/semantic_partitioning.cc.o" "gcc" "src/systems/CMakeFiles/rdfspark_systems.dir/semantic_partitioning.cc.o.d"
  "/root/repo/src/systems/sparkql.cc" "src/systems/CMakeFiles/rdfspark_systems.dir/sparkql.cc.o" "gcc" "src/systems/CMakeFiles/rdfspark_systems.dir/sparkql.cc.o.d"
  "/root/repo/src/systems/sparkrdf.cc" "src/systems/CMakeFiles/rdfspark_systems.dir/sparkrdf.cc.o" "gcc" "src/systems/CMakeFiles/rdfspark_systems.dir/sparkrdf.cc.o.d"
  "/root/repo/src/systems/sparqlgx.cc" "src/systems/CMakeFiles/rdfspark_systems.dir/sparqlgx.cc.o" "gcc" "src/systems/CMakeFiles/rdfspark_systems.dir/sparqlgx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparql/CMakeFiles/rdfspark_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/rdfspark_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/spark/CMakeFiles/rdfspark_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rdfspark_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
