file(REMOVE_RECURSE
  "CMakeFiles/rdfspark_systems.dir/common.cc.o"
  "CMakeFiles/rdfspark_systems.dir/common.cc.o.d"
  "CMakeFiles/rdfspark_systems.dir/engine.cc.o"
  "CMakeFiles/rdfspark_systems.dir/engine.cc.o.d"
  "CMakeFiles/rdfspark_systems.dir/graphframes_engine.cc.o"
  "CMakeFiles/rdfspark_systems.dir/graphframes_engine.cc.o.d"
  "CMakeFiles/rdfspark_systems.dir/graphx_sm.cc.o"
  "CMakeFiles/rdfspark_systems.dir/graphx_sm.cc.o.d"
  "CMakeFiles/rdfspark_systems.dir/haqwa.cc.o"
  "CMakeFiles/rdfspark_systems.dir/haqwa.cc.o.d"
  "CMakeFiles/rdfspark_systems.dir/hybrid.cc.o"
  "CMakeFiles/rdfspark_systems.dir/hybrid.cc.o.d"
  "CMakeFiles/rdfspark_systems.dir/s2rdf.cc.o"
  "CMakeFiles/rdfspark_systems.dir/s2rdf.cc.o.d"
  "CMakeFiles/rdfspark_systems.dir/s2x.cc.o"
  "CMakeFiles/rdfspark_systems.dir/s2x.cc.o.d"
  "CMakeFiles/rdfspark_systems.dir/semantic_partitioning.cc.o"
  "CMakeFiles/rdfspark_systems.dir/semantic_partitioning.cc.o.d"
  "CMakeFiles/rdfspark_systems.dir/sparkql.cc.o"
  "CMakeFiles/rdfspark_systems.dir/sparkql.cc.o.d"
  "CMakeFiles/rdfspark_systems.dir/sparkrdf.cc.o"
  "CMakeFiles/rdfspark_systems.dir/sparkrdf.cc.o.d"
  "CMakeFiles/rdfspark_systems.dir/sparqlgx.cc.o"
  "CMakeFiles/rdfspark_systems.dir/sparqlgx.cc.o.d"
  "librdfspark_systems.a"
  "librdfspark_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfspark_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
