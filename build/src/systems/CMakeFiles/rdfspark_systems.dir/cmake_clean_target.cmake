file(REMOVE_RECURSE
  "librdfspark_systems.a"
)
