# Empty compiler generated dependencies file for rdfspark_common.
# This may be replaced when dependencies are built.
