file(REMOVE_RECURSE
  "librdfspark_common.a"
)
