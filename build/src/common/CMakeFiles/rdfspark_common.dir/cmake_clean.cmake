file(REMOVE_RECURSE
  "CMakeFiles/rdfspark_common.dir/rng.cc.o"
  "CMakeFiles/rdfspark_common.dir/rng.cc.o.d"
  "CMakeFiles/rdfspark_common.dir/status.cc.o"
  "CMakeFiles/rdfspark_common.dir/status.cc.o.d"
  "CMakeFiles/rdfspark_common.dir/string_util.cc.o"
  "CMakeFiles/rdfspark_common.dir/string_util.cc.o.d"
  "librdfspark_common.a"
  "librdfspark_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfspark_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
