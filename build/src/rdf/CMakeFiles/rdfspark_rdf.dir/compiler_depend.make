# Empty compiler generated dependencies file for rdfspark_rdf.
# This may be replaced when dependencies are built.
