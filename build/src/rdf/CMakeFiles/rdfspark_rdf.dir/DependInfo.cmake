
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdf/dictionary.cc" "src/rdf/CMakeFiles/rdfspark_rdf.dir/dictionary.cc.o" "gcc" "src/rdf/CMakeFiles/rdfspark_rdf.dir/dictionary.cc.o.d"
  "/root/repo/src/rdf/generator.cc" "src/rdf/CMakeFiles/rdfspark_rdf.dir/generator.cc.o" "gcc" "src/rdf/CMakeFiles/rdfspark_rdf.dir/generator.cc.o.d"
  "/root/repo/src/rdf/ntriples.cc" "src/rdf/CMakeFiles/rdfspark_rdf.dir/ntriples.cc.o" "gcc" "src/rdf/CMakeFiles/rdfspark_rdf.dir/ntriples.cc.o.d"
  "/root/repo/src/rdf/rdfs.cc" "src/rdf/CMakeFiles/rdfspark_rdf.dir/rdfs.cc.o" "gcc" "src/rdf/CMakeFiles/rdfspark_rdf.dir/rdfs.cc.o.d"
  "/root/repo/src/rdf/store.cc" "src/rdf/CMakeFiles/rdfspark_rdf.dir/store.cc.o" "gcc" "src/rdf/CMakeFiles/rdfspark_rdf.dir/store.cc.o.d"
  "/root/repo/src/rdf/term.cc" "src/rdf/CMakeFiles/rdfspark_rdf.dir/term.cc.o" "gcc" "src/rdf/CMakeFiles/rdfspark_rdf.dir/term.cc.o.d"
  "/root/repo/src/rdf/versioning.cc" "src/rdf/CMakeFiles/rdfspark_rdf.dir/versioning.cc.o" "gcc" "src/rdf/CMakeFiles/rdfspark_rdf.dir/versioning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rdfspark_common.dir/DependInfo.cmake"
  "/root/repo/build/src/spark/CMakeFiles/rdfspark_spark.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
