file(REMOVE_RECURSE
  "librdfspark_rdf.a"
)
