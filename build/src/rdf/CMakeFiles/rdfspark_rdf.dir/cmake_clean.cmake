file(REMOVE_RECURSE
  "CMakeFiles/rdfspark_rdf.dir/dictionary.cc.o"
  "CMakeFiles/rdfspark_rdf.dir/dictionary.cc.o.d"
  "CMakeFiles/rdfspark_rdf.dir/generator.cc.o"
  "CMakeFiles/rdfspark_rdf.dir/generator.cc.o.d"
  "CMakeFiles/rdfspark_rdf.dir/ntriples.cc.o"
  "CMakeFiles/rdfspark_rdf.dir/ntriples.cc.o.d"
  "CMakeFiles/rdfspark_rdf.dir/rdfs.cc.o"
  "CMakeFiles/rdfspark_rdf.dir/rdfs.cc.o.d"
  "CMakeFiles/rdfspark_rdf.dir/store.cc.o"
  "CMakeFiles/rdfspark_rdf.dir/store.cc.o.d"
  "CMakeFiles/rdfspark_rdf.dir/term.cc.o"
  "CMakeFiles/rdfspark_rdf.dir/term.cc.o.d"
  "CMakeFiles/rdfspark_rdf.dir/versioning.cc.o"
  "CMakeFiles/rdfspark_rdf.dir/versioning.cc.o.d"
  "librdfspark_rdf.a"
  "librdfspark_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfspark_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
