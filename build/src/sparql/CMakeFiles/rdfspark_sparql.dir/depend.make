# Empty dependencies file for rdfspark_sparql.
# This may be replaced when dependencies are built.
