file(REMOVE_RECURSE
  "librdfspark_sparql.a"
)
