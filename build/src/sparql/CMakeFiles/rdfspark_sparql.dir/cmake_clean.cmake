file(REMOVE_RECURSE
  "CMakeFiles/rdfspark_sparql.dir/ast.cc.o"
  "CMakeFiles/rdfspark_sparql.dir/ast.cc.o.d"
  "CMakeFiles/rdfspark_sparql.dir/binding.cc.o"
  "CMakeFiles/rdfspark_sparql.dir/binding.cc.o.d"
  "CMakeFiles/rdfspark_sparql.dir/eval.cc.o"
  "CMakeFiles/rdfspark_sparql.dir/eval.cc.o.d"
  "CMakeFiles/rdfspark_sparql.dir/lexer.cc.o"
  "CMakeFiles/rdfspark_sparql.dir/lexer.cc.o.d"
  "CMakeFiles/rdfspark_sparql.dir/parser.cc.o"
  "CMakeFiles/rdfspark_sparql.dir/parser.cc.o.d"
  "CMakeFiles/rdfspark_sparql.dir/serialize.cc.o"
  "CMakeFiles/rdfspark_sparql.dir/serialize.cc.o.d"
  "CMakeFiles/rdfspark_sparql.dir/shape.cc.o"
  "CMakeFiles/rdfspark_sparql.dir/shape.cc.o.d"
  "librdfspark_sparql.a"
  "librdfspark_sparql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfspark_sparql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
