# Empty compiler generated dependencies file for bench_extvp.
# This may be replaced when dependencies are built.
