file(REMOVE_RECURSE
  "CMakeFiles/bench_extvp.dir/bench_extvp.cc.o"
  "CMakeFiles/bench_extvp.dir/bench_extvp.cc.o.d"
  "bench_extvp"
  "bench_extvp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extvp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
