# Empty dependencies file for bench_abstractions.
# This may be replaced when dependencies are built.
