# Empty compiler generated dependencies file for bench_joins.
# This may be replaced when dependencies are built.
