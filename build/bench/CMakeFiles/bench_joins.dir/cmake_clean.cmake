file(REMOVE_RECURSE
  "CMakeFiles/bench_joins.dir/bench_joins.cc.o"
  "CMakeFiles/bench_joins.dir/bench_joins.cc.o.d"
  "bench_joins"
  "bench_joins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
