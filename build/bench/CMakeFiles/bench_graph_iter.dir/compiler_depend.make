# Empty compiler generated dependencies file for bench_graph_iter.
# This may be replaced when dependencies are built.
