file(REMOVE_RECURSE
  "CMakeFiles/bench_graph_iter.dir/bench_graph_iter.cc.o"
  "CMakeFiles/bench_graph_iter.dir/bench_graph_iter.cc.o.d"
  "bench_graph_iter"
  "bench_graph_iter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph_iter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
