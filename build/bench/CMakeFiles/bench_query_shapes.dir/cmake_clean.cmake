file(REMOVE_RECURSE
  "CMakeFiles/bench_query_shapes.dir/bench_query_shapes.cc.o"
  "CMakeFiles/bench_query_shapes.dir/bench_query_shapes.cc.o.d"
  "bench_query_shapes"
  "bench_query_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
