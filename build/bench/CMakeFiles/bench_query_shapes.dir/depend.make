# Empty dependencies file for bench_query_shapes.
# This may be replaced when dependencies are built.
