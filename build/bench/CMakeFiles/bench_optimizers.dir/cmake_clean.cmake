file(REMOVE_RECURSE
  "CMakeFiles/bench_optimizers.dir/bench_optimizers.cc.o"
  "CMakeFiles/bench_optimizers.dir/bench_optimizers.cc.o.d"
  "bench_optimizers"
  "bench_optimizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
