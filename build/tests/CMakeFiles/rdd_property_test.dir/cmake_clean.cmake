file(REMOVE_RECURSE
  "CMakeFiles/rdd_property_test.dir/rdd_property_test.cc.o"
  "CMakeFiles/rdd_property_test.dir/rdd_property_test.cc.o.d"
  "rdd_property_test"
  "rdd_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdd_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
