# Empty dependencies file for rdd_property_test.
# This may be replaced when dependencies are built.
