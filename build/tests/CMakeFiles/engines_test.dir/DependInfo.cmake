
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/engines_test.cc" "tests/CMakeFiles/engines_test.dir/engines_test.cc.o" "gcc" "tests/CMakeFiles/engines_test.dir/engines_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/systems/CMakeFiles/rdfspark_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/rdfspark_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/rdfspark_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/spark/CMakeFiles/rdfspark_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rdfspark_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
