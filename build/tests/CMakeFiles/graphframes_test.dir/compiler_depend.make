# Empty compiler generated dependencies file for graphframes_test.
# This may be replaced when dependencies are built.
