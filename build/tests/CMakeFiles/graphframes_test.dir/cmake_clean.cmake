file(REMOVE_RECURSE
  "CMakeFiles/graphframes_test.dir/graphframes_test.cc.o"
  "CMakeFiles/graphframes_test.dir/graphframes_test.cc.o.d"
  "graphframes_test"
  "graphframes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphframes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
