# Empty compiler generated dependencies file for lubm_workload_test.
# This may be replaced when dependencies are built.
