file(REMOVE_RECURSE
  "CMakeFiles/lubm_workload_test.dir/lubm_workload_test.cc.o"
  "CMakeFiles/lubm_workload_test.dir/lubm_workload_test.cc.o.d"
  "lubm_workload_test"
  "lubm_workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lubm_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
