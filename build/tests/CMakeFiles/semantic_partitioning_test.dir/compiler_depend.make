# Empty compiler generated dependencies file for semantic_partitioning_test.
# This may be replaced when dependencies are built.
