file(REMOVE_RECURSE
  "CMakeFiles/semantic_partitioning_test.dir/semantic_partitioning_test.cc.o"
  "CMakeFiles/semantic_partitioning_test.dir/semantic_partitioning_test.cc.o.d"
  "semantic_partitioning_test"
  "semantic_partitioning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_partitioning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
