file(REMOVE_RECURSE
  "CMakeFiles/fuzz_conformance_test.dir/fuzz_conformance_test.cc.o"
  "CMakeFiles/fuzz_conformance_test.dir/fuzz_conformance_test.cc.o.d"
  "fuzz_conformance_test"
  "fuzz_conformance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
