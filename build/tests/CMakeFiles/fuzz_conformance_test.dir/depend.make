# Empty dependencies file for fuzz_conformance_test.
# This may be replaced when dependencies are built.
