file(REMOVE_RECURSE
  "CMakeFiles/inference_integration_test.dir/inference_integration_test.cc.o"
  "CMakeFiles/inference_integration_test.dir/inference_integration_test.cc.o.d"
  "inference_integration_test"
  "inference_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
