file(REMOVE_RECURSE
  "CMakeFiles/graphx_property_test.dir/graphx_property_test.cc.o"
  "CMakeFiles/graphx_property_test.dir/graphx_property_test.cc.o.d"
  "graphx_property_test"
  "graphx_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphx_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
