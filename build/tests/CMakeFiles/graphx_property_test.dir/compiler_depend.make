# Empty compiler generated dependencies file for graphx_property_test.
# This may be replaced when dependencies are built.
