# Empty dependencies file for versioning_test.
# This may be replaced when dependencies are built.
