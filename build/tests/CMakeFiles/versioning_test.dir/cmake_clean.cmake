file(REMOVE_RECURSE
  "CMakeFiles/versioning_test.dir/versioning_test.cc.o"
  "CMakeFiles/versioning_test.dir/versioning_test.cc.o.d"
  "versioning_test"
  "versioning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/versioning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
