# Empty compiler generated dependencies file for construct_describe_test.
# This may be replaced when dependencies are built.
