file(REMOVE_RECURSE
  "CMakeFiles/construct_describe_test.dir/construct_describe_test.cc.o"
  "CMakeFiles/construct_describe_test.dir/construct_describe_test.cc.o.d"
  "construct_describe_test"
  "construct_describe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/construct_describe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
