file(REMOVE_RECURSE
  "CMakeFiles/rdd_test.dir/rdd_test.cc.o"
  "CMakeFiles/rdd_test.dir/rdd_test.cc.o.d"
  "rdd_test"
  "rdd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
