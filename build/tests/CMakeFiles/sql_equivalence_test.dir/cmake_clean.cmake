file(REMOVE_RECURSE
  "CMakeFiles/sql_equivalence_test.dir/sql_equivalence_test.cc.o"
  "CMakeFiles/sql_equivalence_test.dir/sql_equivalence_test.cc.o.d"
  "sql_equivalence_test"
  "sql_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
