# Empty dependencies file for versioned_store.
# This may be replaced when dependencies are built.
