file(REMOVE_RECURSE
  "CMakeFiles/partitioning_explorer.dir/partitioning_explorer.cpp.o"
  "CMakeFiles/partitioning_explorer.dir/partitioning_explorer.cpp.o.d"
  "partitioning_explorer"
  "partitioning_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioning_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
